package router

// Membership mutation and the posterior migration engine. Every
// membership change follows the same shape:
//
//  1. capture the current ring generation,
//  2. mutate membership (append a shard / fence one behind a drain state),
//  3. rebuild the ring under rebuildMu,
//  4. run a migration pass against the old-vs-new ring diff: stream each
//     remapped posterior from its losing shard to its new owner, deleting
//     the source copy only after the destination acknowledged the import.
//
// The pass is idempotent and fail-safe by construction: a transfer that
// dies anywhere before the destination's 2xx leaves the source snapshot
// untouched (it simply counts as failed and can be re-driven by a later
// pass), a duplicate PUT replaces the same entry in place, and an
// unacknowledged delete at worst leaves a duplicate the next pass prunes.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"phmse/internal/client"
	"phmse/internal/cluster"
	"phmse/internal/encode"
)

var errShardExists = errors.New("router: shard is already an active member")

// errOversizeTransfer marks a transfer body over maxRequestBody: the
// document can never fit through the protocol, so retrying is pointless.
var errOversizeTransfer = errors.New("router: transfer body exceeds the protocol limit")

// addShard registers a new backend (or reactivates a drained member) and
// rebalances remapped posteriors onto it. The new shard enters pessimistic
// (out of the ring) and is admitted by a synchronous probe, so a dead base
// URL is registered but owns no arcs until it answers.
func (rt *Router) addShard(ctx context.Context, base string) (*encode.AddShardResponse, error) {
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	rt.applyDocLocked(ctx) // fold in any adopted-but-unapplied peer document first

	if sh := rt.findShard(base); sh != nil {
		sh.mu.Lock()
		wasDrained := sh.drain != ""
		sh.drain = ""
		quarantines := sh.quarantines
		sh.mu.Unlock()
		if !wasDrained {
			rt.aud.append(encode.AuditEntry{Op: "add", Shard: base, Outcome: "conflict", Origin: rt.cfg.ReplicaID})
			return nil, errShardExists
		}
		// Reactivation: lift the drain fence (in the document first, then
		// locally), re-probe, and migrate the shard's old arcs (and their
		// posteriors) back onto it.
		rt.mutateDoc(func(doc *encode.ClusterDoc) bool {
			cluster.SetMember(doc, encode.ClusterMember{Base: sh.name, Quarantines: quarantines})
			return true
		})
		oldRing := rt.currentRing()
		rt.probeShard(ctx, sh)
		rt.rebuildRing()
		rep := rt.rebalance(ctx, oldRing, rt.currentRing(), nil)
		rt.aud.append(encode.AuditEntry{
			Op: "reactivate", Shard: sh.name, Origin: rt.cfg.ReplicaID,
			Outcome: migrationOutcome(rep), Migrated: rep.Migrated, Failed: rep.Failed,
		})
		return &encode.AddShardResponse{Shard: rt.shardInfo(sh), Reactivated: true, Migration: rep}, nil
	}

	rt.mutateDoc(func(doc *encode.ClusterDoc) bool {
		cluster.SetMember(doc, encode.ClusterMember{Base: base})
		return true
	})
	oldRing := rt.currentRing()
	sh := &shard{name: base, base: base}
	rt.mu.Lock()
	rt.shards = append(rt.shards, sh)
	rt.mu.Unlock()
	rt.probeShard(ctx, sh)
	// The probe rebuilds only on a readiness transition; rebuild once more
	// unconditionally so the install is never skipped.
	rt.rebuildRing()
	rep := rt.rebalance(ctx, oldRing, rt.currentRing(), nil)
	rt.aud.append(encode.AuditEntry{
		Op: "add", Shard: sh.name, Origin: rt.cfg.ReplicaID,
		Outcome: migrationOutcome(rep), Migrated: rep.Migrated, Failed: rep.Failed,
	})
	return &encode.AddShardResponse{Shard: rt.shardInfo(sh), Migration: rep}, nil
}

// migrationOutcome condenses a migration pass for the audit log.
func migrationOutcome(rep encode.MigrationReport) string {
	if rep.Failed > 0 {
		return "partial"
	}
	return "ok"
}

// drainOutcome condenses a drain/remove report for the audit log.
func drainOutcome(rep *encode.DrainReport) string {
	switch {
	case rep.TimedOut:
		return "timed_out"
	case rep.Migration.Failed > 0:
		return "partial"
	default:
		return "ok"
	}
}

// removeShard ejects a member. mode "drain" fences the shard, waits for
// its in-flight jobs (bounded by deadline), and migrates every retained
// posterior to its new owner before ejecting; "immediate" ejects with no
// wait and no migration — the escape hatch for a shard that is already
// dead and can serve nothing.
func (rt *Router) removeShard(ctx context.Context, sh *shard, mode string, deadline time.Duration) *encode.DrainReport {
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	rt.applyDocLocked(ctx)
	rep := &encode.DrainReport{Mode: mode, Removed: true}

	sh.mu.Lock()
	alreadyGone := sh.removed
	sh.drain = "draining"
	sh.mu.Unlock()
	if alreadyGone { // lost a race with a concurrent remove: nothing left to do
		rep.Shard = rt.shardInfo(sh)
		return rep
	}
	// Fence the member in the document first: peers stop routing to it
	// within a gossip round, while this replica runs the migration.
	rt.mutateDoc(func(doc *encode.ClusterDoc) bool {
		if m := cluster.FindMember(doc, sh.name); m != nil {
			m.DrainState = "draining"
		}
		return true
	})
	oldRing := rt.currentRing()
	rt.rebuildRing() // fence: the shard owns no arcs, new solves stop landing
	newRing := rt.currentRing()

	if mode == "drain" {
		rep.TimedOut, rep.WaitedMillis, rep.InflightAtEnd = rt.awaitQuiesce(ctx, sh, deadline)
		rep.Migration = rt.rebalance(ctx, oldRing, newRing, sh)
	}

	rt.mutateDoc(func(doc *encode.ClusterDoc) bool {
		return cluster.RemoveMember(doc, sh.name)
	})
	// Eject from membership. removed is set before the slice and instance
	// table are touched so a stale probe or relay observing the pointer
	// can never re-register it.
	sh.mu.Lock()
	sh.removed = true
	instance := sh.instance
	sh.mu.Unlock()
	rt.mu.Lock()
	for i, s := range rt.shards {
		if s == sh {
			rt.shards = append(rt.shards[:i], rt.shards[i+1:]...)
			break
		}
	}
	if instance != "" && rt.byInstance[instance] == sh {
		delete(rt.byInstance, instance)
	}
	rt.mu.Unlock()
	rep.Shard = rt.shardInfo(sh)
	rt.aud.append(encode.AuditEntry{
		Op: "remove", Shard: sh.name, Mode: mode, Origin: rt.cfg.ReplicaID,
		Outcome: drainOutcome(rep), InflightAtEnd: rep.InflightAtEnd,
		Migrated: rep.Migration.Migrated, Failed: rep.Migration.Failed,
	})
	return rep
}

// drainShard fences a member and migrates its posteriors like a drain-mode
// removal, but keeps it registered in state "drained" — the
// decommission-later half of the drain state machine. POST
// /admin/v1/shards with the same base reactivates it.
func (rt *Router) drainShard(ctx context.Context, sh *shard, deadline time.Duration) *encode.DrainReport {
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	rt.applyDocLocked(ctx)
	rep := &encode.DrainReport{Mode: "drain"}

	sh.mu.Lock()
	already := sh.drain == "drained"
	sh.drain = "draining"
	sh.mu.Unlock()
	rt.mutateDoc(func(doc *encode.ClusterDoc) bool {
		m := cluster.FindMember(doc, sh.name)
		if m == nil || m.DrainState == "draining" {
			return false
		}
		m.DrainState = "draining"
		return true
	})
	oldRing := rt.currentRing()
	rt.rebuildRing()
	if !already {
		rep.TimedOut, rep.WaitedMillis, rep.InflightAtEnd = rt.awaitQuiesce(ctx, sh, deadline)
		rep.Migration = rt.rebalance(ctx, oldRing, rt.currentRing(), sh)
	}
	sh.mu.Lock()
	sh.drain = "drained"
	sh.mu.Unlock()
	rt.mutateDoc(func(doc *encode.ClusterDoc) bool {
		m := cluster.FindMember(doc, sh.name)
		if m == nil || m.DrainState == "drained" {
			return false
		}
		m.DrainState = "drained"
		return true
	})
	rep.Shard = rt.shardInfo(sh)
	rt.aud.append(encode.AuditEntry{
		Op: "drain", Shard: sh.name, Origin: rt.cfg.ReplicaID,
		Outcome: drainOutcome(rep), InflightAtEnd: rep.InflightAtEnd,
		Migrated: rep.Migration.Migrated, Failed: rep.Migration.Failed,
	})
	return rep
}

// awaitQuiesce polls the shard's /readyz until its queued+running count
// reaches zero, the deadline passes, or the shard stops answering
// repeatedly (a dead shard never quiesces — waiting out a long deadline
// on it would stall the admin call for nothing).
func (rt *Router) awaitQuiesce(ctx context.Context, sh *shard, deadline time.Duration) (timedOut bool, waitedMillis int64, inflight int) {
	start := time.Now()
	end := start.Add(deadline)
	failures := 0
	for {
		var rs encode.HealthStatus
		pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
		answered := rt.probeGetAny(pctx, sh, "/readyz", &rs)
		cancel()
		if answered {
			failures = 0
			inflight = rs.QueueDepth + rs.Running
			if inflight == 0 {
				return false, time.Since(start).Milliseconds(), 0
			}
		} else {
			failures++
			inflight = -1
			if failures >= 3 {
				return true, time.Since(start).Milliseconds(), inflight
			}
		}
		if !time.Now().Before(end) {
			return true, time.Since(start).Milliseconds(), inflight
		}
		select {
		case <-ctx.Done():
			return true, time.Since(start).Milliseconds(), inflight
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// probeGetAny fetches a health endpoint accepting any decodable response
// (unlike probeGet it does not require a 200 — a draining or saturated
// 503 still carries the occupancy the quiesce wait needs).
func (rt *Router) probeGetAny(ctx context.Context, sh *shard, path string, out *encode.HealthStatus) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.base+path, nil)
	if err != nil {
		return false
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out) == nil
}

// rebalance runs one posterior migration pass between two ring
// generations. With only == nil (a shard joined) every live member's index
// is scanned and the old-vs-new arc diff prefilters which posteriors
// could have remapped; with only set (that shard is leaving) just its
// index is scanned and every posterior moves — a departing shard owns
// nothing under the new ring, so the arc diff is beside the point.
func (rt *Router) rebalance(ctx context.Context, oldRing, newRing *ring, only *shard) encode.MigrationReport {
	rep := encode.MigrationReport{}
	arcs := encode.ChangedArcs(oldRing.encodePoints(), newRing.encodePoints())
	var sources []*shard
	if only != nil {
		sources = []*shard{only}
	} else {
		if !arcs.Any() {
			return rep // same routing: nothing can have remapped
		}
		for _, sh := range rt.shardList() {
			if sh.isAlive() {
				sources = append(sources, sh)
			}
		}
	}
	rt.migrPasses.Add(1)
	for _, src := range sources {
		idx, err := rt.fetchPosteriorIndex(ctx, src, "")
		if err != nil {
			log.Printf("phmse-router: migration: indexing %s: %v", src.name, err)
			rep.Failed++
			rt.migrFailed.Add(1)
			continue
		}
		for _, info := range idx.Posteriors {
			if info.TopologyHash == "" {
				rep.Skipped++
				rt.migrSkipped.Add(1)
				continue
			}
			if only == nil && !arcs.Contains(encode.KeyHash(info.TopologyHash)) {
				continue
			}
			dst := newRing.lookup(info.TopologyHash)
			if dst == nil || dst == src {
				// No destination (empty ring) or the key still lives here.
				if only != nil || dst == nil {
					rep.Skipped++
					rt.migrSkipped.Add(1)
				}
				continue
			}
			if err := rt.transferPosterior(ctx, src, dst, info); err != nil {
				log.Printf("phmse-router: migrating %s (%s -> %s): %v", info.Job, src.name, dst.name, err)
				rep.Failed++
				rt.migrFailed.Add(1)
				continue
			}
			rep.Migrated++
			rep.Bytes += info.Bytes
			rt.migrMigrated.Add(1)
			rt.migrBytes.Add(info.Bytes)
		}
	}
	// A pass that left posteriors behind should not wait out the repair
	// interval: kick an immediate anti-entropy sweep to re-drive them.
	if rep.Failed > 0 {
		rt.kickRepair()
	}
	return rep
}

// transferPosterior moves one retained posterior: export the document
// from the source, import it into the destination, and delete the source
// copy only after the destination's ack. Any failure before the ack
// returns an error with the source untouched; a failure of the delete
// itself is logged but not an error — the posterior is safely at its new
// owner, and the stale source copy is pruned by a later pass.
//
// The export body is piped straight into the import request
// (streamPosterior) — the router never buffers the document, so a
// transfer costs O(copy-buffer) memory instead of O(document), and a
// multi-megabyte covariance document streams through back-pressured by
// the destination. A streamed body cannot be replayed, so the retry
// policy wraps the whole export+import pair: each attempt re-opens the
// export. Transient faults — transport errors, 5xx bursts, 429
// backpressure — back off and retry inside MigrateTimeout (floored by
// any Retry-After the backend sent); 507 posterior_budget, other 4xx,
// and an oversize body stay terminal on first sight. The PUT is safe to
// replay: an import of the same id replaces the entry in place.
func (rt *Router) transferPosterior(ctx context.Context, src, dst *shard, info encode.PosteriorInfo) error {
	tctx, cancel := context.WithTimeout(ctx, rt.cfg.MigrateTimeout)
	defer cancel()
	esc := url.PathEscape(info.Job)

	var last error
	attempts := rt.cfg.Retry.MaxAttempts
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-time.After(rt.cfg.Retry.Delay(i-1, last)):
			case <-tctx.Done():
				return fmt.Errorf("%w (last: %v)", tctx.Err(), last)
			}
		}
		retryable, err := rt.streamPosterior(tctx, src, dst, esc)
		if err == nil {
			if _, derr := rt.adminDo(tctx, http.MethodDelete, src.base+"/v1/posteriors/"+esc, nil); derr != nil {
				log.Printf("phmse-router: migration: deleting %s from %s after ack: %v", info.Job, src.name, derr)
			}
			return nil
		}
		if !retryable {
			return err
		}
		last = err
	}
	return fmt.Errorf("after %d attempts: %w", attempts, last)
}

// streamPosterior is one export→import attempt: it opens the source's
// posterior export and pipes the response body directly into the
// destination's import PUT through a size fence that errors — rather
// than truncates — past the protocol's transfer limit. Returns whether
// a failure is worth retrying (transport errors, 5xx, 429) or terminal
// (oversize body, 507, other 4xx).
func (rt *Router) streamPosterior(ctx context.Context, src, dst *shard, esc string) (retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, src.base+"/v1/jobs/"+esc+"/posterior?cov=full", nil)
	if err != nil {
		return false, fmt.Errorf("export: %w", err)
	}
	rt.authTransfer(req)
	resp, err := rt.hc.Do(req)
	if err != nil {
		return true, fmt.Errorf("export: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		defer discard(resp)
		retryable, err := classifyTransferResponse(resp)
		return retryable, fmt.Errorf("export: %w", err)
	}
	if resp.ContentLength > maxRequestBody {
		discard(resp)
		return false, fmt.Errorf("export: %d-byte document: %w", resp.ContentLength, errOversizeTransfer)
	}

	// Import leg: the export body is the PUT body. The cap reader fails
	// the stream past the limit so a truncated document is never passed
	// off as the import — the destination sees an aborted body, not a
	// silently clipped one.
	cr := &capReader{r: resp.Body, limit: maxRequestBody}
	preq, err := http.NewRequestWithContext(ctx, http.MethodPut, dst.base+"/v1/posteriors/"+esc, cr)
	if err != nil {
		resp.Body.Close()
		return false, fmt.Errorf("import: %w", err)
	}
	preq.Header.Set("Content-Type", "application/json")
	if resp.ContentLength >= 0 {
		preq.ContentLength = resp.ContentLength
	}
	rt.authTransfer(preq)
	presp, err := rt.hc.Do(preq)
	resp.Body.Close()
	if err != nil {
		if cr.oversize {
			return false, fmt.Errorf("export of %s: %w", esc, errOversizeTransfer)
		}
		return true, fmt.Errorf("import: %w", err)
	}
	defer discard(presp)
	if presp.StatusCode >= 200 && presp.StatusCode <= 299 {
		return false, nil
	}
	retryable, err = classifyTransferResponse(presp)
	return retryable, fmt.Errorf("import: %w", err)
}

// authTransfer stamps the router's admin token onto a transfer-protocol
// request.
func (rt *Router) authTransfer(req *http.Request) {
	if rt.cfg.AdminToken != "" {
		req.Header.Set("Authorization", "Bearer "+rt.cfg.AdminToken)
	}
}

// classifyTransferResponse shapes a non-2xx transfer response as a
// *client.APIError (so RetryPolicy.Delay honours Retry-After) and
// decides retryability under the adminDo rules: 429 and 5xx retry, 507
// and other 4xx are terminal.
func classifyTransferResponse(resp *http.Response) (retryable bool, err error) {
	var retryAfter time.Duration
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, aerr := strconv.Atoi(v); aerr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	retryable = resp.StatusCode == http.StatusTooManyRequests ||
		(resp.StatusCode >= 500 && resp.StatusCode != http.StatusInsufficientStorage)
	return retryable, transferError(resp.StatusCode, retryAfter, body)
}

// capReader passes through at most limit bytes and then fails the read —
// a stream that would exceed the transfer protocol's size limit must
// abort loudly, never truncate.
type capReader struct {
	r        io.Reader
	n        int64
	limit    int64
	oversize bool
}

func (c *capReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	if c.n > c.limit {
		c.oversize = true
		return 0, errOversizeTransfer
	}
	return n, err
}

// adminDo issues one migration-protocol request, presenting the router's
// admin token, and returns the response body of a 2xx. Transport errors,
// 5xx responses, and 429 backpressure retry under the configured policy —
// with the backoff floored by any Retry-After the backend sent — because
// every protocol request is replay-safe: the index and export are reads,
// the import replaces the same id in place, and the delete is naturally
// idempotent. Three rejections stay terminal on first sight: 507
// posterior_budget (a full store does not drain on the retry timescale;
// the sweep counts the posterior failed and moves on), any other 4xx
// (the request itself is wrong), and a response over the protocol's
// transfer size limit (the document can never fit, and a truncated read
// must never be passed off as the export).
func (rt *Router) adminDo(ctx context.Context, method, u string, body []byte) ([]byte, error) {
	var last error
	attempts := rt.cfg.Retry.MaxAttempts
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-time.After(rt.cfg.Retry.Delay(i-1, last)):
			case <-ctx.Done():
				return nil, fmt.Errorf("%w (last: %v)", ctx.Err(), last)
			}
		}
		status, retryAfter, data, err := rt.adminDoOnce(ctx, method, u, body)
		if err != nil {
			if errors.Is(err, errOversizeTransfer) {
				return nil, err // the document can never fit; don't re-download it
			}
			last = err
			continue
		}
		if status >= 200 && status <= 299 {
			return data, nil
		}
		herr := transferError(status, retryAfter, data)
		if status == http.StatusTooManyRequests ||
			(status >= 500 && status != http.StatusInsufficientStorage) {
			last = herr
			continue
		}
		return nil, herr // 507 and any 4xx: terminal
	}
	return nil, fmt.Errorf("after %d attempts: %w", attempts, last)
}

// adminDoOnce is one attempt: transport errors in err, everything else as
// a status + parsed Retry-After + body.
func (rt *Router) adminDoOnce(ctx context.Context, method, u string, body []byte) (int, time.Duration, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return 0, 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if rt.cfg.AdminToken != "" {
		req.Header.Set("Authorization", "Bearer "+rt.cfg.AdminToken)
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return 0, 0, nil, err
	}
	defer resp.Body.Close()
	var retryAfter time.Duration
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBody+1))
	if err != nil {
		return 0, 0, nil, err
	}
	if len(data) > maxRequestBody {
		// A silently truncated export would be re-imported as a corrupt
		// document; surface the limit instead so the transfer fails loudly
		// and the source copy stays intact.
		return 0, 0, nil, fmt.Errorf("%s %s: %d-byte response: %w", method, u, maxRequestBody, errOversizeTransfer)
	}
	return resp.StatusCode, retryAfter, data, nil
}

// transferError shapes a non-2xx transfer response as a *client.APIError,
// so RetryPolicy.Delay floors the next backoff by the server's
// Retry-After exactly as the typed client would.
func transferError(status int, retryAfter time.Duration, body []byte) error {
	ae := &client.APIError{HTTPStatus: status, Code: encode.CodeInternal, RetryAfter: retryAfter}
	var env encode.ErrorEnvelope
	if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
	} else {
		msg := string(body)
		if len(msg) > 200 {
			msg = msg[:200]
		}
		ae.Message = msg
	}
	return ae
}

// fetchPosteriorIndex reads one shard's retained-posterior index.
func (rt *Router) fetchPosteriorIndex(ctx context.Context, sh *shard, prefix string) (encode.PosteriorIndex, error) {
	u := sh.base + "/v1/posteriors"
	if prefix != "" {
		u += "?prefix=" + url.QueryEscape(prefix)
	}
	var idx encode.PosteriorIndex
	data, err := rt.adminDo(ctx, http.MethodGet, u, nil)
	if err != nil {
		return idx, err
	}
	return idx, json.Unmarshal(data, &idx)
}

// holdsPosterior verifies a shard still retains the posterior of jobID
// with an exact-id index query. Errors count as holding: when the shard
// cannot be asked (down, or predates the index endpoint), the router
// falls back to the instance-qualifier routing that was correct before
// migrations existed.
func (rt *Router) holdsPosterior(ctx context.Context, sh *shard, jobID string) bool {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	idx, err := rt.fetchPosteriorIndex(pctx, sh, jobID)
	if err != nil {
		return true
	}
	for _, info := range idx.Posteriors {
		if info.Job == jobID {
			return true
		}
	}
	return false
}

// locatePosterior finds the live shard retaining a posterior whose job
// id's instance qualifier no longer names a member — the shard that
// minted it was removed and its posteriors migrated. Exact-id index
// queries fan out to the live shards, least-loaded first — the holder is
// equally likely anywhere, so the sequential probes stay off the busy
// shards; the first holder wins (migration guarantees at most one
// current owner, stale duplicates serve the same document).
func (rt *Router) locatePosterior(ctx context.Context, jobID string) *shard {
	for _, sh := range rt.shardsByLoad() {
		if !sh.isAlive() {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
		idx, err := rt.fetchPosteriorIndex(pctx, sh, jobID)
		cancel()
		if err != nil {
			continue
		}
		for _, info := range idx.Posteriors {
			if info.Job == jobID {
				return sh
			}
		}
	}
	return nil
}
