package router

import (
	"net/http"
	"time"

	"phmse/internal/encode"
)

// Metrics is the JSON document served at the router's /metrics.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// RingShards is the number of shards currently in the ring (ready);
	// UnhealthyShards counts configured shards outside it.
	RingShards      int `json:"ring_shards"`
	UnhealthyShards int `json:"unhealthy_shards"`
	VNodesPerShard  int `json:"vnodes_per_shard"`
	// Totals across all shards.
	Forwarded int64 `json:"forwarded"`
	Failed    int64 `json:"failed"`
	Retried   int64 `json:"retried"`
	// NoShard counts requests refused because no shard could serve them;
	// ListFanouts counts cross-shard listing merges.
	NoShard     int64 `json:"no_shard"`
	ListFanouts int64 `json:"list_fanouts"`
	// ShardInflightLimit is the configured per-shard in-flight cap (0 =
	// unlimited); Saturated counts requests the router answered 429
	// because every eligible shard was at that cap.
	ShardInflightLimit int   `json:"shard_inflight_limit,omitempty"`
	Saturated          int64 `json:"saturated"`
	// BreakerRefused counts requests the router turned away because the
	// target shard's circuit breaker was open (or its half-open trial slot
	// was taken).
	BreakerRefused int64 `json:"breaker_refused"`
	// Migration totals across every admin membership change.
	Migration MetricsMigration `json:"migration"`
	// Repair tallies the anti-entropy sweeps.
	Repair MetricsRepair `json:"repair"`
	// Cluster reports the replicated control plane: document
	// epoch/origin, gossip traffic, and the repair-sweeper lease.
	Cluster MetricsCluster `json:"cluster"`
	Shards  []ShardMetrics `json:"shards"`
}

// MetricsCluster reports the replicated membership document and its
// gossip loop.
type MetricsCluster struct {
	// ReplicaID is this router's identity in the document.
	ReplicaID string `json:"replica_id"`
	// Epoch/Origin/Hash describe the current document: its version, the
	// replica that produced it, and its content digest.
	Epoch  uint64 `json:"epoch"`
	Origin string `json:"origin,omitempty"`
	Hash   string `json:"hash"`
	// Members is the document's member count (including fenced ones).
	Members int `json:"members"`
	// GossipRounds counts anti-entropy rounds started; GossipInSync the
	// digest probes short-circuited because both sides matched.
	GossipRounds int64 `json:"gossip_rounds"`
	GossipInSync int64 `json:"gossip_in_sync"`
	// DocsAdopted counts remote documents that replaced the local one;
	// Conflicts counts equal-epoch tie-breaks (adopted or rejected);
	// DocsRejected counts documents refused for a bad content hash.
	DocsAdopted  int64 `json:"docs_adopted"`
	Conflicts    int64 `json:"conflicts"`
	DocsRejected int64 `json:"docs_rejected"`
	// Pushes counts full-document pushes sent after a digest mismatch
	// our document won; PeerFailures counts failed exchanges.
	Pushes       int64 `json:"pushes"`
	PeerFailures int64 `json:"peer_failures"`
	// Applied counts adopted documents that changed membership here.
	Applied int64 `json:"applied"`
	// LeaseHolder/LeaseEpoch/LeaseExpiresUnixMs mirror the repair-
	// sweeper lease in the document; LeaseSkips counts repair ticks this
	// replica skipped because a peer held a live lease.
	LeaseHolder        string `json:"lease_holder,omitempty"`
	LeaseEpoch         uint64 `json:"lease_epoch,omitempty"`
	LeaseExpiresUnixMs int64  `json:"lease_expires_unix_ms,omitempty"`
	LeaseSkips         int64  `json:"lease_skips"`
	// Peers is the per-peer exchange health.
	Peers []encode.ClusterPeer `json:"peers,omitempty"`
}

// MetricsMigration tallies the posterior migration passes run by admin
// membership changes.
type MetricsMigration struct {
	// Passes counts migration passes (one per effective membership
	// change); Migrated/Failed/Skipped count posteriors across all of
	// them, Bytes the payload moved.
	Passes   int64 `json:"passes"`
	Migrated int64 `json:"migrated"`
	Failed   int64 `json:"failed"`
	Skipped  int64 `json:"skipped"`
	Bytes    int64 `json:"bytes"`
}

// MetricsRepair tallies the anti-entropy repair sweeps.
type MetricsRepair struct {
	// Sweeps counts completed sweeps (periodic, kicked, and admin-driven);
	// Repaired/Failed/Skipped count posteriors across all of them.
	Sweeps   int64 `json:"sweeps"`
	Repaired int64 `json:"repaired"`
	Failed   int64 `json:"failed"`
	Skipped  int64 `json:"skipped"`
}

// ShardMetrics is one backend's routing state and forwarding counters.
type ShardMetrics struct {
	Base       string `json:"base"`
	InstanceID string `json:"instance_id,omitempty"`
	Alive      bool   `json:"alive"`
	Ready      bool   `json:"ready"`
	// ConsecutiveFailures is the current probe-failure streak driving the
	// capped backoff (0 for a healthy shard).
	ConsecutiveFailures int   `json:"consecutive_failures,omitempty"`
	Forwarded           int64 `json:"forwarded"`
	Failed              int64 `json:"failed"`
	Retried             int64 `json:"retried"`
	// Inflight is the gauge of requests currently forwarded to this shard
	// (always 0 when no in-flight limit is configured); Rejected counts
	// requests the limiter turned away at this shard.
	Inflight int64 `json:"inflight"`
	Rejected int64 `json:"rejected"`
	// QueueDepth and Running mirror the shard's last /readyz probe — the
	// per-shard load gauge (groundwork for load-aware ring weighting).
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
	// DrainState is non-empty while the admin API holds the shard out of
	// the ring ("draining" or "drained").
	DrainState string `json:"drain_state,omitempty"`
	// BreakerState is "closed", "open", or "half_open"; the counters tally
	// lifetime transitions into open/half-open/closed.
	BreakerState     string `json:"breaker_state"`
	BreakerOpens     int64  `json:"breaker_opens,omitempty"`
	BreakerHalfOpens int64  `json:"breaker_half_opens,omitempty"`
	BreakerCloses    int64  `json:"breaker_closes,omitempty"`
	// Quarantines counts flap-suppression quarantines imposed on this
	// shard; ProbationLeft is the consecutive good probes still required
	// before the ring takes it back (0 when not on probation).
	Quarantines   int `json:"quarantines,omitempty"`
	ProbationLeft int `json:"probation_left,omitempty"`
}

// Snapshot assembles the current metrics document.
func (rt *Router) Snapshot() Metrics {
	m := Metrics{
		UptimeSeconds:      time.Since(rt.start).Seconds(),
		VNodesPerShard:     rt.cfg.VNodes,
		Forwarded:          rt.forwarded.Load(),
		Failed:             rt.failed.Load(),
		Retried:            rt.retried.Load(),
		NoShard:            rt.noShard.Load(),
		ListFanouts:        rt.listFanouts.Load(),
		ShardInflightLimit: rt.cfg.ShardInflight,
		Saturated:          rt.saturated.Load(),
		BreakerRefused:     rt.breakerRefused.Load(),
		Repair: MetricsRepair{
			Sweeps:   rt.repairSweeps.Load(),
			Repaired: rt.repairRepaired.Load(),
			Failed:   rt.repairFailed.Load(),
			Skipped:  rt.repairSkipped.Load(),
		},
		Migration: MetricsMigration{
			Passes:   rt.migrPasses.Load(),
			Migrated: rt.migrMigrated.Load(),
			Failed:   rt.migrFailed.Load(),
			Skipped:  rt.migrSkipped.Load(),
			Bytes:    rt.migrBytes.Load(),
		},
	}
	cs := rt.cnode.Snapshot()
	m.Cluster = MetricsCluster{
		ReplicaID:          cs.ReplicaID,
		Epoch:              cs.Epoch,
		Origin:             cs.Origin,
		Hash:               cs.Hash,
		Members:            cs.Members,
		GossipRounds:       cs.Rounds,
		GossipInSync:       cs.InSync,
		DocsAdopted:        cs.Adopted,
		Conflicts:          cs.Conflicts,
		DocsRejected:       cs.Rejected,
		Pushes:             cs.Pushes,
		PeerFailures:       cs.Failures,
		Applied:            rt.clusterApplies.Load(),
		LeaseHolder:        cs.Lease.Holder,
		LeaseEpoch:         cs.Lease.Epoch,
		LeaseExpiresUnixMs: cs.Lease.ExpiresUnixMs,
		LeaseSkips:         rt.leaseSkips.Load(),
		Peers:              cs.Peers,
	}
	for _, sh := range rt.shardList() {
		sh.mu.Lock()
		sm := ShardMetrics{
			Base:                sh.base,
			InstanceID:          sh.instance,
			Alive:               sh.alive,
			Ready:               sh.ready,
			ConsecutiveFailures: sh.consecFails,
			Forwarded:           sh.forwarded.Load(),
			Failed:              sh.failed.Load(),
			Retried:             sh.retried.Load(),
			Inflight:            sh.inflight.Load(),
			Rejected:            sh.rejected.Load(),
			QueueDepth:          sh.queueDepth,
			Running:             sh.running,
			DrainState:          sh.drain,
			Quarantines:         sh.quarantines,
			ProbationLeft:       sh.probationLeft,
		}
		inRing := sh.ready && sh.drain == ""
		sh.mu.Unlock()
		bst, opens, halfOpens, closes := sh.brk.snapshot()
		sm.BreakerState = bst.String()
		sm.BreakerOpens, sm.BreakerHalfOpens, sm.BreakerCloses = opens, halfOpens, closes
		if bst == BreakerOpen {
			inRing = false
		}
		if inRing {
			m.RingShards++
		} else {
			m.UnhealthyShards++
		}
		m.Shards = append(m.Shards, sm)
	}
	return m
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Snapshot())
}
