package router

import (
	"net/http"
	"time"
)

// Metrics is the JSON document served at the router's /metrics.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// RingShards is the number of shards currently in the ring (ready);
	// UnhealthyShards counts configured shards outside it.
	RingShards      int `json:"ring_shards"`
	UnhealthyShards int `json:"unhealthy_shards"`
	VNodesPerShard  int `json:"vnodes_per_shard"`
	// Totals across all shards.
	Forwarded int64 `json:"forwarded"`
	Failed    int64 `json:"failed"`
	Retried   int64 `json:"retried"`
	// NoShard counts requests refused because no shard could serve them;
	// ListFanouts counts cross-shard listing merges.
	NoShard     int64 `json:"no_shard"`
	ListFanouts int64 `json:"list_fanouts"`
	// ShardInflightLimit is the configured per-shard in-flight cap (0 =
	// unlimited); Saturated counts requests the router answered 429
	// because every eligible shard was at that cap.
	ShardInflightLimit int            `json:"shard_inflight_limit,omitempty"`
	Saturated          int64          `json:"saturated"`
	Shards             []ShardMetrics `json:"shards"`
}

// ShardMetrics is one backend's routing state and forwarding counters.
type ShardMetrics struct {
	Base       string `json:"base"`
	InstanceID string `json:"instance_id,omitempty"`
	Alive      bool   `json:"alive"`
	Ready      bool   `json:"ready"`
	// ConsecutiveFailures is the current probe-failure streak driving the
	// capped backoff (0 for a healthy shard).
	ConsecutiveFailures int   `json:"consecutive_failures,omitempty"`
	Forwarded           int64 `json:"forwarded"`
	Failed              int64 `json:"failed"`
	Retried             int64 `json:"retried"`
	// Inflight is the gauge of requests currently forwarded to this shard
	// (always 0 when no in-flight limit is configured); Rejected counts
	// requests the limiter turned away at this shard.
	Inflight int64 `json:"inflight"`
	Rejected int64 `json:"rejected"`
}

// Snapshot assembles the current metrics document.
func (rt *Router) Snapshot() Metrics {
	m := Metrics{
		UptimeSeconds:      time.Since(rt.start).Seconds(),
		VNodesPerShard:     rt.cfg.VNodes,
		Forwarded:          rt.forwarded.Load(),
		Failed:             rt.failed.Load(),
		Retried:            rt.retried.Load(),
		NoShard:            rt.noShard.Load(),
		ListFanouts:        rt.listFanouts.Load(),
		ShardInflightLimit: rt.cfg.ShardInflight,
		Saturated:          rt.saturated.Load(),
	}
	for _, sh := range rt.shards {
		sh.mu.Lock()
		sm := ShardMetrics{
			Base:                sh.base,
			InstanceID:          sh.instance,
			Alive:               sh.alive,
			Ready:               sh.ready,
			ConsecutiveFailures: sh.consecFails,
			Forwarded:           sh.forwarded.Load(),
			Failed:              sh.failed.Load(),
			Retried:             sh.retried.Load(),
			Inflight:            sh.inflight.Load(),
			Rejected:            sh.rejected.Load(),
		}
		ready := sh.ready
		sh.mu.Unlock()
		if ready {
			m.RingShards++
		} else {
			m.UnhealthyShards++
		}
		m.Shards = append(m.Shards, sm)
	}
	return m
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Snapshot())
}
