package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"phmse/internal/client"
	"phmse/internal/constraint"
	"phmse/internal/encode"
	"phmse/internal/faultinject"
	"phmse/internal/geom"
	"phmse/internal/molecule"
)

// keptParams is cheapParams plus posterior retention — the submissions
// the migration tests move around.
func keptParams() encode.SolveParams {
	p := cheapParams()
	p.KeepPosterior = true
	return p
}

// convergingParams runs a real solve (bounded, converging for the small
// anchored helices) so warm-vs-cold cycle counts are meaningful.
func convergingParams() encode.SolveParams {
	return encode.SolveParams{MaxCycles: 500, Perturb: 0.4, Seed: 17}
}

// shardIndex reads one backend daemon's posterior index directly.
func shardIndex(t *testing.T, b *backend, prefix string) encode.PosteriorIndex {
	t.Helper()
	u := b.url() + "/v1/posteriors"
	if prefix != "" {
		u += "?prefix=" + prefix
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatalf("indexing %s: %v", b.name, err)
	}
	defer resp.Body.Close()
	var idx encode.PosteriorIndex
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatalf("indexing %s: %v", b.name, err)
	}
	return idx
}

// expectOwner computes which base URL a ring over the given backends
// assigns to the problem's topology key — the test-side oracle for where
// a migration must have placed a posterior.
func expectOwner(cl *testCluster, p *molecule.Problem, backends ...*backend) string {
	var shards []*shard
	for _, b := range backends {
		shards = append(shards, &shard{name: b.url(), base: b.url()})
	}
	return buildRing(shards, cl.rt.cfg.VNodes).lookup(encode.TopologyHash(p)).name
}

func (cl *testCluster) resultCycles(t *testing.T, id string) int {
	t.Helper()
	doc, err := cl.c.Result(context.Background(), id)
	if err != nil {
		t.Fatalf("result of %s: %v", id, err)
	}
	return doc.Cycles
}

func TestAdminTopologyViewAndAuth(t *testing.T) {
	const token = "adm-secret"
	cl := newClusterWith(t, 2, token, nil)
	ctx := context.Background()

	// Tokenless and wrong-token calls are refused with the typed envelope.
	for _, bad := range []string{"", "wrong"} {
		_, err := client.NewAdmin(cl.rts.URL, bad).Shards(ctx)
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.HTTPStatus != http.StatusUnauthorized || ae.Code != encode.CodeUnauthorized {
			t.Fatalf("admin with token %q: err=%v, want 401/%s", bad, err, encode.CodeUnauthorized)
		}
	}

	admin := client.NewAdmin(cl.rts.URL, token)
	list, err := admin.Shards(ctx)
	if err != nil {
		t.Fatalf("shards: %v", err)
	}
	if len(list.Shards) != 2 || list.RingShards != 2 {
		t.Fatalf("topology view: %d shards, %d in ring; want 2/2", len(list.Shards), list.RingShards)
	}
	seen := map[string]bool{}
	for _, si := range list.Shards {
		if !si.InRing || !si.Ready || !si.Alive || si.DrainState != "" {
			t.Fatalf("shard %s not a healthy ring member: %+v", si.Base, si)
		}
		seen[si.Instance] = true
	}
	if !seen["s1"] || !seen["s2"] {
		t.Fatalf("instances %v, want s1 and s2", seen)
	}

	// Input validation on the mutating endpoints.
	badReqs := []struct {
		method, path, body string
		want               int
	}{
		{http.MethodPost, "/admin/v1/shards", `{"base":"not-a-url"}`, http.StatusBadRequest},
		{http.MethodPost, "/admin/v1/shards", `{`, http.StatusBadRequest},
		{http.MethodDelete, "/admin/v1/shards/nope", "", http.StatusNotFound},
		{http.MethodDelete, "/admin/v1/shards/s1?mode=sideways", "", http.StatusBadRequest},
		{http.MethodDelete, "/admin/v1/shards/s1?deadline_ms=-4", "", http.StatusBadRequest},
		{http.MethodPost, "/admin/v1/shards/nope/drain", "", http.StatusNotFound},
	}
	for _, br := range badReqs {
		req, _ := http.NewRequest(br.method, cl.rts.URL+br.path, bytes.NewReader([]byte(br.body)))
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != br.want {
			t.Fatalf("%s %s: status %d, want %d", br.method, br.path, resp.StatusCode, br.want)
		}
	}

	// Adding an active member conflicts.
	_, err = admin.AddShard(ctx, cl.backends[0].url())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.HTTPStatus != http.StatusConflict || ae.Code != encode.CodeConflict {
		t.Fatalf("duplicate add: err=%v, want 409/%s", err, encode.CodeConflict)
	}
}

// TestDrainRemoveMigratesPosteriors is the acceptance path: a drain-mode
// DELETE migrates every retained posterior whose key remaps, a warm start
// for a migrated topology is served from the new owner's reloaded store
// with strictly fewer cycles than the cold solve, and the removed shard
// rejoins via POST with no router restart.
func TestDrainRemoveMigratesPosteriors(t *testing.T) {
	const token = "rotate-me"
	cl := newClusterWith(t, 3, token, nil)
	ctx := context.Background()
	admin := client.NewAdmin(cl.rts.URL, token)

	p := helix(2)
	params := convergingParams()
	params.KeepPosterior = true
	st := cl.submit(t, p, params)
	cl.waitDone(t, st.ID)
	coldCycles := cl.resultCycles(t, st.ID)
	owner := cl.byInstance(t, st.ID)

	rep, err := admin.RemoveShard(ctx, owner.name, client.RemoveShardOptions{})
	if err != nil {
		t.Fatalf("remove %s: %v", owner.name, err)
	}
	if !rep.Removed || rep.Mode != "drain" || rep.TimedOut {
		t.Fatalf("drain removal report: %+v", rep)
	}
	if rep.Migration.Migrated < 1 || rep.Migration.Failed != 0 {
		t.Fatalf("migration report: %+v, want >=1 migrated, 0 failed", rep.Migration)
	}

	// The source store no longer holds the posterior (deleted post-ack)...
	if idx := shardIndex(t, owner, st.ID); len(idx.Posteriors) != 0 {
		t.Fatalf("source %s still indexes %s after migration", owner.name, st.ID)
	}
	// ...and exactly the ring-predicted survivor does.
	var rest []*backend
	for _, b := range cl.backends {
		if b != owner {
			rest = append(rest, b)
		}
	}
	want := expectOwner(cl, p, rest...)
	var holder *backend
	for _, b := range rest {
		if len(shardIndex(t, b, st.ID).Posteriors) == 1 {
			if holder != nil {
				t.Fatalf("posterior %s held by both %s and %s", st.ID, holder.name, b.name)
			}
			holder = b
		}
	}
	if holder == nil {
		t.Fatalf("no surviving shard holds %s", st.ID)
	}
	if holder.url() != want {
		t.Fatalf("posterior landed on %s, ring places its key on %s", holder.url(), want)
	}

	// Restart the holder: the warm start below must come out of its
	// *reloaded* store, proving the migrated posterior was persisted.
	holder.stop()
	holder.start(t)
	cl.waitRing(t, 2, 0)

	warm, err := cl.c.WarmStart(ctx, p, convergingParams(), st.ID)
	if err != nil {
		t.Fatalf("warm start after migration: %v", err)
	}
	if got := encode.JobInstance(warm.ID); got != holder.name {
		t.Fatalf("warm start routed to %q, migrated posterior lives on %q", got, holder.name)
	}
	if done := cl.waitDone(t, warm.ID); done.WarmStartFrom != st.ID {
		t.Fatalf("warm start from %q, want %q", done.WarmStartFrom, st.ID)
	}
	if warmCycles := cl.resultCycles(t, warm.ID); warmCycles >= coldCycles {
		t.Fatalf("warm solve took %d cycles, cold took %d; want strictly fewer", warmCycles, coldCycles)
	}

	// The ejected shard rejoins through the API alone — same router.
	resp, err := admin.AddShard(ctx, owner.url())
	if err != nil {
		t.Fatalf("re-adding %s: %v", owner.name, err)
	}
	if resp.Shard.Base != owner.url() {
		t.Fatalf("re-add response names %q, want %q", resp.Shard.Base, owner.url())
	}
	cl.waitRing(t, 3, 0)
	st2 := cl.submit(t, withExtraDistances(helix(9)), cheapParams())
	cl.waitDone(t, st2.ID)
}

// TestMigrationDestDownLeavesSourceIntact: a destination that dies
// mid-transfer must fail the migration *without* losing the source copy —
// no destination ack, no source delete — and a re-driven pass after
// recovery moves it.
func TestMigrationDestDownLeavesSourceIntact(t *testing.T) {
	// An hour-long probe interval freezes the router's health view: the
	// destination stays "ready" (and so keeps its ring arcs) even after we
	// kill it, which is exactly the crash window under test.
	cl := newClusterWith(t, 2, "", func(c *Config) {
		c.ProbeInterval = time.Hour
		c.ProbeTimeout = 500 * time.Millisecond
		// A stopped destination fails transfers with an instant dial
		// refusal, so the timeout never gates the crash window — keep it
		// generous for the recovery transfer under the race detector.
		c.MigrateTimeout = 10 * time.Second
	})
	ctx := context.Background()
	admin := client.NewAdmin(cl.rts.URL, "")

	p := helix(3)
	st := cl.submit(t, p, keptParams())
	cl.waitDone(t, st.ID)
	owner := cl.byInstance(t, st.ID)
	var dest *backend
	for _, b := range cl.backends {
		if b != owner {
			dest = b
		}
	}

	dest.stop() // crash the only possible destination

	rep, err := admin.RemoveShard(ctx, owner.name, client.RemoveShardOptions{Deadline: 2 * time.Second})
	if err != nil {
		t.Fatalf("remove with dead destination: %v", err)
	}
	if rep.Migration.Failed < 1 || rep.Migration.Migrated != 0 {
		t.Fatalf("migration with dead destination: %+v, want >=1 failed, 0 migrated", rep.Migration)
	}

	// The source daemon (still running — only membership changed) retains
	// the posterior in memory and on disk.
	if idx := shardIndex(t, owner, st.ID); len(idx.Posteriors) != 1 {
		t.Fatalf("source lost the posterior after a failed transfer: %d entries", len(idx.Posteriors))
	}
	files, err := os.ReadDir(owner.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("source snapshot directory empty after a failed transfer")
	}

	// Recovery: destination restarts, source rejoins, and a re-driven
	// drain moves the posterior across.
	dest.start(t)
	cl.rt.CheckNow(ctx)
	if _, err := admin.AddShard(ctx, owner.url()); err != nil {
		t.Fatalf("re-adding source: %v", err)
	}
	rep2, err := admin.RemoveShard(ctx, owner.name, client.RemoveShardOptions{Deadline: 2 * time.Second})
	if err != nil {
		t.Fatalf("re-driven remove: %v", err)
	}
	if rep2.Migration.Migrated < 1 || rep2.Migration.Failed != 0 {
		t.Fatalf("re-driven migration: %+v, want >=1 migrated, 0 failed", rep2.Migration)
	}
	if idx := shardIndex(t, dest, st.ID); len(idx.Posteriors) != 1 {
		t.Fatalf("destination does not hold %s after recovery", st.ID)
	}
}

// TestDrainDeadlineExpiry: a shard pinned by a job that never finishes is
// still ejected when the drain deadline passes, with the expiry reported.
func TestDrainDeadlineExpiry(t *testing.T) {
	// Block every attempt of the tagged problem until released. The
	// release cleanup is registered after newCluster's, so (LIFO) the
	// worker is unblocked before the backends shut down.
	cl := newCluster(t, 3)
	var once sync.Once
	block := make(chan struct{})
	release := func() { once.Do(func() { close(block) }) }
	faultinject.Set(&faultinject.Hooks{BeforeAttempt: func(tag string, attempt int) {
		if tag == "drain-blocker" {
			<-block
		}
	}})
	t.Cleanup(func() { faultinject.Reset(); release() })

	p := helix(4)
	p = &molecule.Problem{Name: "drain-blocker", Atoms: p.Atoms, Constraints: p.Constraints, Tree: p.Tree}
	st := cl.submit(t, p, cheapParams())
	pinned := cl.byInstance(t, st.ID)

	// Wait until the job is actually running (occupying the worker).
	deadline := time.Now().Add(10 * time.Second)
	for {
		jst, err := cl.c.Status(context.Background(), st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if jst.State == encode.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running: %s", jst.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	admin := client.NewAdmin(cl.rts.URL, "")
	rep, err := admin.RemoveShard(context.Background(), pinned.name,
		client.RemoveShardOptions{Deadline: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("remove pinned shard: %v", err)
	}
	if !rep.TimedOut {
		t.Fatalf("drain of a pinned shard did not report expiry: %+v", rep)
	}
	if rep.InflightAtEnd < 1 {
		t.Fatalf("expiry report counts %d in-flight, want >= 1", rep.InflightAtEnd)
	}
	if !rep.Removed {
		t.Fatal("deadline expiry must still eject the shard")
	}
	if m := cl.rt.Snapshot(); m.RingShards != 2 {
		t.Fatalf("ring holds %d shards after ejection, want 2", m.RingShards)
	}
	release()
}

// TestDrainKeepsMembership: POST .../drain fences and migrates but leaves
// the member registered as "drained"; re-adding its base reactivates it.
func TestDrainKeepsMembership(t *testing.T) {
	cl := newCluster(t, 2)
	ctx := context.Background()
	admin := client.NewAdmin(cl.rts.URL, "")

	st := cl.submit(t, helix(5), keptParams())
	cl.waitDone(t, st.ID)
	owner := cl.byInstance(t, st.ID)

	rep, err := admin.DrainShard(ctx, owner.name, 2*time.Second)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if rep.Removed {
		t.Fatal("POST drain must not eject the member")
	}
	if rep.Shard.DrainState != "drained" {
		t.Fatalf("drain state %q, want drained", rep.Shard.DrainState)
	}
	if rep.Migration.Migrated < 1 || rep.Migration.Failed != 0 {
		t.Fatalf("drain migration: %+v", rep.Migration)
	}

	list, err := admin.Shards(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Shards) != 2 || list.RingShards != 1 {
		t.Fatalf("after drain: %d members, %d in ring; want 2/1", len(list.Shards), list.RingShards)
	}

	// Solves keep working on the remaining member.
	st2 := cl.submit(t, helix(6), cheapParams())
	if got := encode.JobInstance(st2.ID); got == owner.name {
		t.Fatalf("solve routed to drained shard %s", owner.name)
	}
	cl.waitDone(t, st2.ID)

	// Reactivation by re-adding the same base.
	resp, err := admin.AddShard(ctx, owner.url())
	if err != nil {
		t.Fatalf("reactivate: %v", err)
	}
	if !resp.Reactivated {
		t.Fatalf("adding a drained member's base must reactivate it: %+v", resp)
	}
	cl.waitRing(t, 2, 0)
}

// TestQueueDepthGauge: the router records each shard's probed queue
// occupancy and serves it as a per-shard gauge on /metrics and the admin
// view.
func TestQueueDepthGauge(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/readyz":
			json.NewEncoder(w).Encode(encode.HealthStatus{ //nolint:errcheck
				Status: "ok", InstanceID: "busy", QueueDepth: 7, Running: 2,
			})
		default:
			http.NotFound(w, r)
		}
	}))
	defer stub.Close()

	rt, err := New(Config{Shards: []string{stub.URL}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.CheckNow(context.Background())

	m := rt.Snapshot()
	if len(m.Shards) != 1 || m.Shards[0].QueueDepth != 7 || m.Shards[0].Running != 2 {
		t.Fatalf("shard gauge: %+v, want queue_depth=7 running=2", m.Shards)
	}

	rts := httptest.NewServer(rt)
	defer rts.Close()
	list, err := client.NewAdmin(rts.URL, "").Shards(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Shards) != 1 || list.Shards[0].QueueDepth != 7 || list.Shards[0].Running != 2 {
		t.Fatalf("admin gauge: %+v, want queue_depth=7 running=2", list.Shards)
	}
}

// TestE2EGrowCluster grows a 2-shard cluster to 3 through the admin API
// alone and asserts a warm start for a migrated topology lands on the new
// member. The target topology is chosen up front with the same ring
// construction the router uses, so the assertion is deterministic.
func TestE2EGrowCluster(t *testing.T) {
	cl := newClusterWith(t, 2, "", nil)
	ctx := context.Background()
	admin := client.NewAdmin(cl.rts.URL, "")

	b3 := &backend{name: "s3", dir: t.TempDir()}
	b3.start(t)
	t.Cleanup(b3.stop)

	// Find a topology the grown ring will place on the new shard. The
	// topology hash covers the constraint graph, so adding one distance
	// measurement to a fixed small helix yields as many distinct (and
	// equally cheap to solve) candidate topologies as there are atom pairs.
	base := helix(2)
	var p *molecule.Problem
	n := len(base.Atoms)
search:
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			cons := append([]constraint.Constraint(nil), base.Constraints...)
			d := geom.Dist(base.Atoms[i].Pos, base.Atoms[j].Pos)
			cons = append(cons, constraint.Distance{I: i, J: j, Target: d, Sigma: 0.5})
			cand := &molecule.Problem{Name: base.Name, Atoms: base.Atoms, Constraints: cons, Tree: base.Tree}
			if expectOwner(cl, cand, cl.backends[0], cl.backends[1], b3) == b3.url() {
				p = cand
				break search
			}
		}
	}
	if p == nil {
		t.Fatal("no candidate topology maps to the new shard; vnode placement broken")
	}

	params := convergingParams()
	params.KeepPosterior = true
	st := cl.submit(t, p, params)
	cl.waitDone(t, st.ID)
	coldCycles := cl.resultCycles(t, st.ID)

	resp, err := admin.AddShard(ctx, b3.url())
	if err != nil {
		t.Fatalf("growing cluster: %v", err)
	}
	if !resp.Shard.InRing {
		t.Fatalf("added shard not admitted to the ring: %+v", resp.Shard)
	}
	if resp.Migration.Migrated < 1 || resp.Migration.Failed != 0 {
		t.Fatalf("grow migration: %+v, want >=1 migrated, 0 failed", resp.Migration)
	}
	cl.waitRing(t, 3, 0)
	if len(shardIndex(t, b3, st.ID).Posteriors) != 1 {
		t.Fatalf("new shard does not hold the remapped posterior %s", st.ID)
	}

	warm, err := cl.c.WarmStart(ctx, p, convergingParams(), st.ID)
	if err != nil {
		t.Fatalf("warm start after growth: %v", err)
	}
	if got := encode.JobInstance(warm.ID); got != "s3" {
		t.Fatalf("warm start routed to %q, want the new shard s3", got)
	}
	if done := cl.waitDone(t, warm.ID); done.WarmStartFrom != st.ID {
		t.Fatalf("warm start from %q, want %q", done.WarmStartFrom, st.ID)
	}
	if warmCycles := cl.resultCycles(t, warm.ID); warmCycles >= coldCycles {
		t.Fatalf("warm solve on grown cluster took %d cycles, cold took %d", warmCycles, coldCycles)
	}
}
