package router

// The admin-plane audit log: every membership mutation and every
// effective repair sweep leaves exactly one record, in order, with the
// operation's outcome — and with -audit-log set, the same records land in
// the JSONL file.

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"phmse/internal/client"
	"phmse/internal/encode"
)

// TestAuditTrail drives one of each audited operation through the admin
// API and checks the resulting trail — in memory via GET /admin/v1/audit
// and on disk via the JSONL file.
func TestAuditTrail(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "audit.jsonl")
	cl := newClusterWith(t, 2, "", func(cfg *Config) {
		cfg.RepairInterval = -1
		cfg.AuditLog = logPath
	})
	ctx := context.Background()
	admin := client.NewAdmin(cl.rts.URL, "")

	st := keepJob(t, cl, 6)
	owner := cl.byInstance(t, st.ID)
	wrong := other(t, cl, owner)

	// A sweep with nothing to do is operational noise, not history.
	if rep, err := admin.Repair(ctx); err != nil || rep.Repaired != 0 {
		t.Fatalf("idle repair = %+v, %v", rep, err)
	}
	if got, err := admin.Audit(ctx, 0); err != nil || len(got.Entries) != 0 {
		t.Fatalf("audit after idle sweep = %+v, %v; want empty", got, err)
	}

	// 1. Adding an active member: refused, and the refusal is recorded.
	if _, err := admin.AddShard(ctx, owner.url()); err == nil {
		t.Fatal("adding an active member succeeded")
	}
	// 2. Drain the owner (fences it, evacuates its posterior).
	if rep, err := admin.DrainShard(ctx, owner.url(), 5*time.Second); err != nil || rep.Migration.Migrated != 1 {
		t.Fatalf("drain = %+v, %v", rep, err)
	}
	// 3. Reactivate it (its posterior migrates home again).
	if rep, err := admin.AddShard(ctx, owner.url()); err != nil || !rep.Reactivated {
		t.Fatalf("reactivate = %+v, %v", rep, err)
	}
	// 4. An effective repair sweep.
	strandPosterior(t, owner, wrong, st.ID)
	if rep, err := admin.Repair(ctx); err != nil || rep.Repaired != 1 {
		t.Fatalf("repair = %+v, %v", rep, err)
	}

	got, err := admin.Audit(ctx, 0)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	want := []struct{ op, outcome string }{
		{"add", "conflict"},
		{"drain", "ok"},
		{"reactivate", "ok"},
		{"repair", "ok"},
	}
	if len(got.Entries) != len(want) {
		t.Fatalf("audit holds %d entries %+v, want %d", len(got.Entries), got.Entries, len(want))
	}
	var lastStamp time.Time
	for i, e := range got.Entries {
		if e.Op != want[i].op || e.Outcome != want[i].outcome {
			t.Fatalf("entry %d = %s/%s, want %s/%s", i, e.Op, e.Outcome, want[i].op, want[i].outcome)
		}
		ts, err := time.Parse(time.RFC3339Nano, e.Time)
		if err != nil {
			t.Fatalf("entry %d stamp %q: %v", i, e.Time, err)
		}
		if ts.Before(lastStamp) {
			t.Fatalf("entry %d out of order: %v before %v", i, ts, lastStamp)
		}
		lastStamp = ts
	}
	if got.Entries[1].Migrated != 1 || got.Entries[3].Migrated != 1 {
		t.Fatalf("drain/repair migration counts = %d/%d, want 1/1",
			got.Entries[1].Migrated, got.Entries[3].Migrated)
	}
	if got.Entries[0].Shard != owner.url() {
		t.Fatalf("conflict entry names %q, want the shard %q", got.Entries[0].Shard, owner.url())
	}

	// limit= serves just the most recent records.
	tail, err := admin.Audit(ctx, 1)
	if err != nil || len(tail.Entries) != 1 || tail.Entries[0].Op != "repair" {
		t.Fatalf("audit limit=1 = %+v, %v; want only the repair entry", tail, err)
	}

	// The JSONL file mirrors the in-memory trail line for line.
	f, err := os.Open(logPath)
	if err != nil {
		t.Fatalf("opening audit file: %v", err)
	}
	defer f.Close()
	var lines int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e encode.AuditEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("audit line %d %q: %v", lines, sc.Text(), err)
		}
		if e.Op != want[lines].op {
			t.Fatalf("audit line %d op = %s, want %s", lines, e.Op, want[lines].op)
		}
		lines++
	}
	if lines != len(want) {
		t.Fatalf("audit file holds %d lines, want %d", lines, len(want))
	}
}

// TestAuditLimitValidation: a malformed limit is a client error, not a
// silent default.
func TestAuditLimitValidation(t *testing.T) {
	cl := newClusterWith(t, 1, "", func(cfg *Config) { cfg.RepairInterval = -1 })
	for _, bad := range []string{"bogus", "0", "-3"} {
		resp, err := http.Get(cl.rts.URL + "/admin/v1/audit?limit=" + bad)
		if err != nil {
			t.Fatalf("limit=%s: %v", bad, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("limit=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestAuditSurvivesWithoutFile: the memory-only mode serves the same
// trail when no -audit-log is configured.
func TestAuditSurvivesWithoutFile(t *testing.T) {
	cl := newClusterWith(t, 2, "", func(cfg *Config) { cfg.RepairInterval = -1 })
	ctx := context.Background()
	admin := client.NewAdmin(cl.rts.URL, "")

	if _, err := admin.AddShard(ctx, cl.backends[0].url()); err == nil {
		t.Fatal("adding an active member succeeded")
	}
	got, err := admin.Audit(ctx, 0)
	if err != nil || len(got.Entries) != 1 || got.Entries[0].Outcome != "conflict" {
		t.Fatalf("memory-only audit = %+v, %v; want the conflict entry", got, err)
	}
}
