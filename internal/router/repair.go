package router

// The anti-entropy repair loop: the active half of the self-healing
// layer. Migration passes (migrate.go) move posteriors when membership
// changes, but a transfer that fails — destination down mid-stream,
// import rejected, source briefly unreachable — strands the posterior on
// a shard the ring no longer maps it to, and a shard that crashed and
// rejoined holds (and misses) posteriors the ring reassigned while it was
// away. Rather than waiting for the next membership change to retry, the
// repair sweeper periodically rebuilds the truth from scratch: index
// every live shard's holdings, diff each posterior against current ring
// ownership, and re-drive the misplaced ones through the same
// ack-before-delete transfer protocol. The sweep is idempotent and
// convergent — running it twice is merely wasteful, and any interrupted
// transfer leaves the source intact for the next pass.
//
// Sweeps serialize with admin membership changes under adminMu, so a
// repair can never race a migration on ring generations. Draining and
// drained shards are fenced on both sides: never a source (the drain owns
// its own migration) and never a destination (they own no ring arcs, and
// a defensive check skips them even if a stale ring says otherwise).

import (
	"context"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"phmse/internal/encode"
)

// repairLoop drives periodic sweeps until Close. The interval is
// jittered ±20% so multiple routers over the same cluster spread out; a
// kick (a migration pass that reported failures) wakes the sweeper
// immediately.
func (rt *Router) repairLoop() {
	defer close(rt.repairDone)
	if rt.cfg.RepairInterval < 0 {
		return
	}
	for {
		t := time.NewTimer(jitterInterval(rt.cfg.RepairInterval))
		select {
		case <-rt.stop:
			t.Stop()
			return
		case <-t.C:
		case <-rt.repairKick:
			t.Stop()
		}
		rt.repairTick()
	}
}

// repairTick is one loop iteration: acquire (or renew) the cluster-wide
// sweeper lease, and only then sweep. With peers configured, exactly one
// replica holds a live lease per interval — the others observe it via
// gossip and skip, so two routers never race duplicate transfers of the
// same posterior. A crashed holder's lease expires after LeaseTTL (3×
// the interval by default) and any peer takes over. Single-replica
// deployments always acquire their own lease. The forced sweep (POST
// /admin/v1/repair → RepairNow) stays unconditional: an operator asking
// for a sweep gets one.
func (rt *Router) repairTick() {
	if !rt.tryRepairLease() {
		return
	}
	rt.RepairNow(context.Background())
}

// jitterInterval spreads d over [0.8d, 1.2d).
func jitterInterval(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d - d/5 + time.Duration(rand.Int63n(int64(d)/5*2+1))
}

// kickRepair schedules an immediate sweep; a no-op when one is already
// pending or the loop is disabled.
func (rt *Router) kickRepair() {
	select {
	case rt.repairKick <- struct{}{}:
	default:
	}
}

// RepairNow runs one synchronous anti-entropy sweep and reports what it
// did. Exported for tests and served at POST /admin/v1/repair; the
// background loop calls it on its jittered cadence.
func (rt *Router) RepairNow(ctx context.Context) encode.RepairReport {
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	rep := rt.repairPass(ctx)
	rt.repairSweeps.Add(1)
	rt.repairRepaired.Add(int64(rep.Repaired))
	rt.repairFailed.Add(int64(rep.Failed))
	rt.repairSkipped.Add(int64(rep.Skipped))
	if rep.Repaired > 0 || rep.Failed > 0 {
		rt.aud.append(encode.AuditEntry{
			Op:       "repair",
			Origin:   rt.cfg.ReplicaID,
			Outcome:  repairOutcome(rep),
			Migrated: rep.Repaired,
			Failed:   rep.Failed,
		})
	}
	return rep
}

func repairOutcome(rep encode.RepairReport) string {
	if rep.Failed > 0 {
		return "partial"
	}
	return "ok"
}

// repairPass is one sweep body, run under adminMu.
func (rt *Router) repairPass(ctx context.Context) encode.RepairReport {
	rep := encode.RepairReport{}
	ring := rt.currentRing()
	if ring == nil || len(ring.points) == 0 {
		return rep // no owners to converge toward
	}

	// Sources: every live member not fenced by a drain or removal. A
	// breaker-open shard still answers its transfer endpoints (they are
	// not live v1 traffic), so it stays a valid source — its holdings
	// belong elsewhere while it owns no arcs.
	var sources []*shard
	for _, sh := range rt.shardList() {
		if !sh.isAlive() || sh.drainState() != "" {
			continue
		}
		sh.mu.Lock()
		removed := sh.removed
		sh.mu.Unlock()
		if !removed {
			sources = append(sources, sh)
		}
	}

	// Bounded transfer concurrency: one semaphore across the whole pass,
	// so a wide sweep cannot dogpile the cluster with parallel streams.
	sem := make(chan struct{}, rt.cfg.RepairConcurrency)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards rep

	for _, src := range sources {
		idx, err := rt.fetchPosteriorIndex(ctx, src, "")
		if err != nil {
			log.Printf("phmse-router: repair: indexing %s: %v", src.name, err)
			mu.Lock()
			rep.Failed++
			mu.Unlock()
			continue
		}
		for _, info := range idx.Posteriors {
			mu.Lock()
			rep.Scanned++
			mu.Unlock()
			if info.TopologyHash == "" {
				mu.Lock()
				rep.Skipped++
				mu.Unlock()
				continue
			}
			dst := ring.lookup(info.TopologyHash)
			if dst == nil || dst == src {
				continue // correctly placed (or no owner exists)
			}
			// Defensive fence: the ring excludes draining shards, but a
			// drain that started after this ring was captured must never
			// become a repair destination.
			if dst.drainState() != "" || !dst.isAlive() {
				mu.Lock()
				rep.Skipped++
				mu.Unlock()
				continue
			}
			wg.Add(1)
			go func(src, dst *shard, info encode.PosteriorInfo) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if err := rt.transferPosterior(ctx, src, dst, info); err != nil {
					log.Printf("phmse-router: repair: re-driving %s (%s -> %s): %v",
						info.Job, src.name, dst.name, err)
					mu.Lock()
					rep.Failed++
					mu.Unlock()
					return
				}
				mu.Lock()
				rep.Repaired++
				rep.Bytes += info.Bytes
				mu.Unlock()
			}(src, dst, info)
		}
	}
	wg.Wait()
	return rep
}

func (rt *Router) handleAdminRepair(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.RepairNow(r.Context()))
}
