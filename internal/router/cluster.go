package router

// The router's half of the replicated control plane (internal/cluster):
// every replica keeps an epoch-stamped membership document, admin
// mutations CAS-bump it under adminMu, and an anti-entropy gossip loop
// converges the replicas so a mutation applied at ANY router reflects in
// every ring within one gossip round.
//
// The document — not rt.shards — is the source of truth. Admin
// operations first fold in any document adopted from a peer but not yet
// applied (apply-on-entry), then mutate the document, then reconcile the
// in-memory shard set to it. Gossip adoptions run the same
// reconciliation under the same adminMu, so local mutations and
// peer-applied documents can never interleave on ring generations.
// Remote applies never run migration passes: the mutating replica owns
// the migration, and the repair lease (one sweeper per interval,
// epoch-fenced in the document) converges any posterior a failed pass
// left behind.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"phmse/internal/cluster"
	"phmse/internal/encode"
)

// initialClusterDoc builds the epoch-0 bootstrap document from the
// configured shard set. Replicas booted from identical -shards flags
// stamp identical documents and are in sync before the first exchange.
func initialClusterDoc(shards []*shard) encode.ClusterDoc {
	doc := encode.ClusterDoc{}
	for _, sh := range shards {
		doc.Members = append(doc.Members, encode.ClusterMember{Base: sh.base})
	}
	return doc
}

// mutateDoc runs one CAS mutation of the membership document and kicks
// the gossip loop so the new epoch propagates without waiting out the
// interval. Callers hold adminMu (publishQuarantine is the one
// exception: it edits a single member's quarantine counter, which
// reconciliation merges max-wise, so it cannot lose an interleaved
// membership update).
func (rt *Router) mutateDoc(fn func(doc *encode.ClusterDoc) bool) {
	if _, changed := rt.cnode.Mutate(fn); changed {
		rt.cnode.Kick()
	}
}

// GossipNow runs one synchronous anti-entropy round against every
// configured peer. By return, every document adopted from a peer has
// been applied to this router's ring and every peer this router's
// document beat has merged (and applied) it. Exported for tests and
// deterministic orchestration.
func (rt *Router) GossipNow(ctx context.Context) {
	rt.cnode.GossipNow(ctx)
}

// onClusterAdopt fires (outside the node lock) whenever a peer's
// document replaced the local one; it applies the adopted membership.
func (rt *Router) onClusterAdopt() {
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	rt.applyDocLocked(context.Background())
}

// onClusterConflict records an equal-epoch document that lost the
// deterministic tie-break: the peer's mutation was rejected here (and
// will be overwritten there), which an operator should be able to see.
func (rt *Router) onClusterConflict(remoteOrigin, remoteHash string) {
	short := remoteHash
	if len(short) > 12 {
		short = short[:12]
	}
	rt.aud.append(encode.AuditEntry{
		Op: "conflict", Origin: remoteOrigin, Outcome: "rejected",
		Detail: fmt.Sprintf("equal-epoch document %s lost the tie-break", short),
	})
}

// applyDocLocked reconciles the in-memory shard set to the node's
// current document. Callers hold adminMu. Only an effective membership
// change (member added, removed, or drain state moved) is audited —
// lease renewals and quarantine syncs bump epochs constantly and are
// operational noise, not history.
func (rt *Router) applyDocLocked(ctx context.Context) {
	doc := rt.cnode.Current()
	detail := rt.reconcileMembership(ctx, doc)
	if detail == "" {
		return
	}
	rt.clusterApplies.Add(1)
	rt.aud.append(encode.AuditEntry{
		Op: "apply", Origin: doc.Origin, Outcome: "ok", Detail: detail,
	})
}

// reconcileMembership syncs rt.shards to the document: members the
// document lacks are ejected (exactly like an admin removal, minus the
// migration — the origin replica ran that), new members join pessimistic
// and are admitted by a synchronous probe so "converged within one
// gossip round" includes the ring, and drain fences and quarantine
// counters follow the document. Returns a "+base -base ~base" summary of
// the effective changes, "" when membership already matched.
func (rt *Router) reconcileMembership(ctx context.Context, doc encode.ClusterDoc) string {
	var changes []string
	inDoc := make(map[string]*encode.ClusterMember, len(doc.Members))
	for i := range doc.Members {
		inDoc[doc.Members[i].Base] = &doc.Members[i]
	}

	// Eject local members the document no longer lists.
	local := make(map[string]*shard)
	for _, sh := range rt.shardList() {
		local[sh.base] = sh
		if inDoc[sh.base] != nil {
			continue
		}
		sh.mu.Lock()
		already := sh.removed
		sh.removed = true
		instance := sh.instance
		sh.mu.Unlock()
		if already {
			continue
		}
		rt.mu.Lock()
		for i, s := range rt.shards {
			if s == sh {
				rt.shards = append(rt.shards[:i], rt.shards[i+1:]...)
				break
			}
		}
		if instance != "" && rt.byInstance[instance] == sh {
			delete(rt.byInstance, instance)
		}
		rt.mu.Unlock()
		changes = append(changes, "-"+sh.base)
	}

	// Add missing members and sync drain/quarantine state on the rest.
	var toProbe []*shard
	for _, m := range doc.Members {
		sh := local[m.Base]
		if sh == nil {
			sh = &shard{name: m.Base, base: m.Base, drain: m.DrainState, quarantines: m.Quarantines}
			rt.mu.Lock()
			rt.shards = append(rt.shards, sh)
			rt.mu.Unlock()
			if m.DrainState == "" {
				toProbe = append(toProbe, sh)
			}
			changes = append(changes, "+"+m.Base)
			continue
		}
		sh.mu.Lock()
		if m.Quarantines > sh.quarantines {
			sh.quarantines = m.Quarantines
		}
		if sh.drain != m.DrainState {
			unfenced := m.DrainState == "" // reactivated by a peer
			sh.drain = m.DrainState
			sh.mu.Unlock()
			if unfenced {
				toProbe = append(toProbe, sh)
			}
			changes = append(changes, "~"+m.Base)
			continue
		}
		sh.mu.Unlock()
	}

	// Probe the members that just became ring-eligible, concurrently but
	// synchronously: when reconciliation returns, a live new member is in
	// the ring.
	var wg sync.WaitGroup
	for _, sh := range toProbe {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			rt.probeShard(ctx, sh)
		}(sh)
	}
	wg.Wait()

	if len(changes) == 0 {
		return ""
	}
	rt.rebuildRing()
	sort.Strings(changes)
	return strings.Join(changes, " ")
}

// publishQuarantine folds a shard's new quarantine count into the
// document so the probation it triggered is served cluster-wide. Called
// from the probe path, deliberately without adminMu (see mutateDoc).
func (rt *Router) publishQuarantine(base string, quarantines int) {
	rt.mutateDoc(func(doc *encode.ClusterDoc) bool {
		m := cluster.FindMember(doc, base)
		if m == nil || m.Quarantines >= quarantines {
			return false
		}
		m.Quarantines = quarantines
		return true
	})
}

// tryRepairLease attempts to take or renew the repair-sweeper lease for
// one interval's sweep; the acquisition is gossiped immediately so peers
// observe the lease before their own tick where possible.
func (rt *Router) tryRepairLease() bool {
	if !rt.cnode.TryAcquireLease(time.Now(), rt.cfg.LeaseTTL) {
		rt.leaseSkips.Add(1)
		return false
	}
	rt.cnode.Kick()
	return true
}

// handleClusterState serves GET /cluster/v1/state: the replica's
// identity, current document, and peer health.
func (rt *Router) handleClusterState(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, encode.ClusterView{
		ReplicaID: rt.cfg.ReplicaID,
		Doc:       rt.cnode.Current(),
		Peers:     rt.cnode.PeerStates(),
	})
}

// handleClusterExchange serves POST /cluster/v1/state, the gossip
// endpoint. Merging (and any resulting membership apply) happens
// synchronously before the response, so a sender that pushed a winning
// document knows the receiver's ring reflects it when the call returns.
func (rt *Router) handleClusterExchange(w http.ResponseWriter, r *http.Request) {
	var req encode.GossipRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest,
			fmt.Sprintf("decoding gossip request: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, rt.cnode.HandleExchange(req))
}
