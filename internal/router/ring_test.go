package router

import (
	"fmt"
	"testing"
)

func testShards(names ...string) []*shard {
	out := make([]*shard, len(names))
	for i, n := range names {
		out[i] = &shard{name: n, base: n}
	}
	return out
}

func TestRingLookupDeterministic(t *testing.T) {
	shards := testShards("http://a", "http://b", "http://c")
	r1 := buildRing(shards, 64)
	r2 := buildRing(shards, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("topo-%d", i)
		if got, want := r1.lookup(key), r2.lookup(key); got != want {
			t.Fatalf("key %q: lookup differs across identical rings: %s vs %s", key, got.name, want.name)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	shards := testShards("http://a", "http://b", "http://c")
	r := buildRing(shards, 64)
	counts := map[*shard]int{}
	const keys = 1000
	for i := 0; i < keys; i++ {
		counts[r.lookup(fmt.Sprintf("topo-%d", i))]++
	}
	if len(counts) != len(shards) {
		t.Fatalf("only %d of %d shards received keys", len(counts), len(shards))
	}
	// With 64 vnodes per shard the split should be roughly even; require
	// every shard to hold at least half its fair share.
	for sh, n := range counts {
		if n < keys/len(shards)/2 {
			t.Errorf("shard %s underloaded: %d of %d keys", sh.name, n, keys)
		}
	}
}

// TestRingMembershipStability checks the consistent-hashing contract:
// removing one shard remaps only the keys that shard owned.
func TestRingMembershipStability(t *testing.T) {
	shards := testShards("http://a", "http://b", "http://c")
	full := buildRing(shards, 64)
	without := buildRing(shards[:2], 64) // drop http://c
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("topo-%d", i)
		before, after := full.lookup(key), without.lookup(key)
		if before == shards[2] {
			if after == shards[2] {
				t.Fatalf("key %q still routed to removed shard", key)
			}
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed shard were remapped", moved)
	}
}

func TestRingReplicasDistinct(t *testing.T) {
	shards := testShards("http://a", "http://b", "http://c")
	r := buildRing(shards, 64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("topo-%d", i)
		reps := r.replicas(key, len(shards))
		if len(reps) != len(shards) {
			t.Fatalf("key %q: want %d replicas, got %d", key, len(shards), len(reps))
		}
		if reps[0] != r.lookup(key) {
			t.Fatalf("key %q: first replica is not the ring owner", key)
		}
		seen := map[*shard]bool{}
		for _, sh := range reps {
			if seen[sh] {
				t.Fatalf("key %q: duplicate replica %s", key, sh.name)
			}
			seen[sh] = true
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := buildRing(nil, 64)
	if r.lookup("anything") != nil {
		t.Fatal("empty ring returned a shard")
	}
	if got := r.replicas("anything", 3); got != nil {
		t.Fatalf("empty ring returned replicas: %v", got)
	}
}
