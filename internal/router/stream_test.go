package router

// Streamed posterior-transfer tests: the export body must be piped
// straight into the import PUT, never buffered — a transfer costs
// O(copy-buffer) memory, not O(document).

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"phmse/internal/client"
	"phmse/internal/encode"
)

// streamDocBytes is the synthetic export size: large enough that a
// buffering regression dominates the allocation profile, small enough
// to move over loopback in well under a second.
const streamDocBytes = 48 << 20

// TestStreamedTransferMemory moves a 48 MiB posterior through
// transferPosterior and asserts the router allocated only a small
// fraction of the document size — buffering the body (the regression
// this guards against) would allocate at least the full 48 MiB.
func TestStreamedTransferMemory(t *testing.T) {
	chunk := make([]byte, 64<<10)
	for i := range chunk {
		chunk[i] = byte('a' + i%16)
	}
	var deleted atomic.Int64
	src := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete {
			deleted.Add(1)
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		for sent := 0; sent < streamDocBytes; sent += len(chunk) {
			if _, err := w.Write(chunk); err != nil {
				return
			}
		}
	}))
	t.Cleanup(src.Close)
	var received atomic.Int64
	dst := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, err := io.Copy(io.Discard, r.Body)
		received.Store(n)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(dst.Close)

	rt, err := New(Config{
		Shards:         []string{src.URL},
		ProbeInterval:  time.Hour,
		RepairInterval: -1,
		MigrateTimeout: time.Minute,
		Retry:          client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	from := &shard{name: "src", base: src.URL}
	to := &shard{name: "dst", base: dst.URL}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := rt.transferPosterior(context.Background(), from, to, encode.PosteriorInfo{Job: "j1", Bytes: streamDocBytes}); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	runtime.ReadMemStats(&after)

	if got := received.Load(); got != streamDocBytes {
		t.Fatalf("destination received %d bytes, want %d", got, streamDocBytes)
	}
	if got := deleted.Load(); got != 1 {
		t.Fatalf("source delete count = %d, want 1 (after the destination ack)", got)
	}
	// The whole process — router plus both httptest stubs — shares this
	// allocation budget, so half the document size is a generous bound
	// that still fails hard if any leg buffers the body.
	if delta := after.TotalAlloc - before.TotalAlloc; delta > streamDocBytes/2 {
		t.Errorf("transfer allocated %d MiB for a %d MiB document; the body is being buffered",
			delta>>20, streamDocBytes>>20)
	}
}

// TestStreamedTransferOversize: an export that overruns the protocol
// limit mid-stream aborts terminally — no retry storm, no delete of the
// source copy.
func TestStreamedTransferOversize(t *testing.T) {
	chunk := make([]byte, 1<<20)
	var exports, deletes atomic.Int64
	src := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete {
			deletes.Add(1)
			w.WriteHeader(http.StatusOK)
			return
		}
		exports.Add(1)
		// No Content-Length: the overrun is only discoverable mid-stream.
		for sent := int64(0); sent <= maxRequestBody; sent += int64(len(chunk)) {
			if _, err := w.Write(chunk); err != nil {
				return
			}
		}
	}))
	t.Cleanup(src.Close)
	dst := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(dst.Close)

	rt, err := New(Config{
		Shards:         []string{src.URL},
		ProbeInterval:  time.Hour,
		RepairInterval: -1,
		MigrateTimeout: time.Minute,
		Retry:          client.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	err = rt.transferPosterior(context.Background(),
		&shard{name: "src", base: src.URL}, &shard{name: "dst", base: dst.URL},
		encode.PosteriorInfo{Job: "big"})
	if err == nil {
		t.Fatal("oversize transfer reported success")
	}
	if got := exports.Load(); got != 1 {
		t.Errorf("oversize transfer was retried: %d export attempts, want 1", got)
	}
	if got := deletes.Load(); got != 0 {
		t.Errorf("source copy deleted after a failed transfer: %d deletes", got)
	}
}
