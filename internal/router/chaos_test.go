package router

// The chaos suite: a real 3-shard cluster behind fault-injecting proxies
// (internal/chaosproxy), driven through scripted fault windows to prove
// the self-healing properties end to end — circuit breakers observed in
// all three states, zero posterior loss through shard death and a
// reset/5xx storm, and anti-entropy repair converging every posterior
// back onto its ring owner within two sweeps.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"phmse/internal/chaosproxy"
	"phmse/internal/client"
	"phmse/internal/encode"
	"phmse/internal/molecule"
)

// v1Only scopes injected faults to the v1 data plane, keeping health
// probes clean: the chaos scenarios target live-traffic failures the
// probe loop cannot see — exactly what the circuit breaker exists for.
func v1Only(r *http.Request) bool { return strings.HasPrefix(r.URL.Path, "/v1/") }

// chaosCluster is a router over n live backends, each behind its own
// chaosproxy. Probes and repair sweeps run only on demand (CheckNow /
// RepairNow) so every scenario step is deterministic.
type chaosCluster struct {
	rt       *Router
	rts      *httptest.Server
	c        *client.Client
	backends []*backend
	proxies  []*chaosproxy.Proxy
	// proxyURL[i] is also the router-side shard name of backends[i].
	proxyURL []string
}

func newChaosCluster(t *testing.T, n int, mut func(*Config)) *chaosCluster {
	t.Helper()
	cc := &chaosCluster{}
	var bases []string
	for i := 0; i < n; i++ {
		b := &backend{name: fmt.Sprintf("s%d", i+1), dir: t.TempDir()}
		b.start(t)
		p := chaosproxy.New(b.url(), int64(i+1))
		ps := httptest.NewServer(p)
		t.Cleanup(func() { ps.Close(); p.Close() })
		cc.backends = append(cc.backends, b)
		cc.proxies = append(cc.proxies, p)
		cc.proxyURL = append(cc.proxyURL, ps.URL)
		bases = append(bases, ps.URL)
	}
	cfg := Config{
		Shards:          bases,
		ProbeInterval:   time.Hour, // probes only via CheckNow
		ProbeTimeout:    2 * time.Second,
		BreakerFailures: 2,
		BreakerCooldown: 100 * time.Millisecond,
		FlapCount:       -1, // scenarios bounce shards deliberately
		RepairInterval:  -1, // sweeps only via RepairNow
		Retry:           client.RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		// A backstop against true hangs only: big posterior transfers
		// (export + re-decode + store) legitimately take seconds, so the
		// timeout must sit well above any honest request.
		HTTPClient: &http.Client{Timeout: 60 * time.Second},
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cc.rt = rt
	cc.rts = httptest.NewServer(rt)
	cc.c = client.New(cc.rts.URL)
	rt.CheckNow(context.Background())
	t.Cleanup(func() {
		cc.rts.Close()
		rt.Close()
		for _, b := range cc.backends {
			b.stop()
		}
	})
	return cc
}

// breakerStateOf reads one shard's breaker position from /metrics.
func (cc *chaosCluster) breakerStateOf(t *testing.T, i int) string {
	t.Helper()
	return shardMetricsOf(t, cc.rt, cc.proxyURL[i]).BreakerState
}

// backendIdxOf maps a router-side shard (named by proxy URL) back to its
// backend index.
func (cc *chaosCluster) backendIdxOf(t *testing.T, sh *shard) int {
	t.Helper()
	for i, u := range cc.proxyURL {
		if u == sh.name {
			return i
		}
	}
	t.Fatalf("shard %q is not one of this cluster's proxies", sh.name)
	return -1
}

// instanceIdx maps a job id's instance qualifier to its backend index.
func (cc *chaosCluster) instanceIdx(t *testing.T, jobID string) int {
	t.Helper()
	instance := encode.JobInstance(jobID)
	for i, b := range cc.backends {
		if b.name == instance {
			return i
		}
	}
	t.Fatalf("job id %q names no cluster backend", jobID)
	return -1
}

// submitRetry submits through the router, riding out injected faults.
func (cc *chaosCluster) submitRetry(t *testing.T, p *molecule.Problem, params encode.SolveParams) encode.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := cc.c.Submit(context.Background(), p, params)
		if err == nil {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit never succeeded through the fault window: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitDoneRetry polls a job to done, riding out injected faults.
func (cc *chaosCluster) waitDoneRetry(t *testing.T, id string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := cc.c.WaitRetry(ctx, id, 20*time.Millisecond, encode.JobDone); err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
}

// waitQuiet waits until no backend holds queued or running work, asking
// each daemon directly (past the proxies) so faults cannot blind the
// check. Orphaned jobs — accepted by a shard whose response was then cut —
// must finish and retain their posteriors before a sweep's holdings
// snapshot can be meaningfully asserted against.
func (cc *chaosCluster) waitQuiet(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		quiet := true
		for _, b := range cc.backends {
			if !b.up {
				continue
			}
			var hs encode.HealthStatus
			resp, err := http.Get(b.url() + "/readyz")
			if err != nil {
				quiet = false
				break
			}
			json.NewDecoder(resp.Body).Decode(&hs) //nolint:errcheck
			resp.Body.Close()
			if hs.QueueDepth+hs.Running > 0 {
				quiet = false
				break
			}
		}
		if quiet {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster never quiesced")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// holdings asks every live backend directly for its posterior index and
// returns job → holder backend indexes and job → topology hash.
func (cc *chaosCluster) holdings(t *testing.T) (held map[string][]int, topo map[string]string) {
	t.Helper()
	held = map[string][]int{}
	topo = map[string]string{}
	for i, b := range cc.backends {
		if !b.up {
			continue
		}
		resp, err := http.Get(b.url() + "/v1/posteriors")
		if err != nil {
			t.Fatalf("indexing backend %s: %v", b.name, err)
		}
		var idx encode.PosteriorIndex
		if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
			t.Fatalf("decoding %s index: %v", b.name, err)
		}
		resp.Body.Close()
		for _, info := range idx.Posteriors {
			held[info.Job] = append(held[info.Job], i)
			topo[info.Job] = info.TopologyHash
		}
	}
	return held, topo
}

// TestBreakerOpensOnLiveFailures drives the breaker through the full
// closed → open → half-open → closed cycle with live traffic against a
// shard that answers probes but fails its v1 requests — the failure shape
// probes alone cannot see.
func TestBreakerOpensOnLiveFailures(t *testing.T) {
	// A long-enough cooldown that the in-cooldown assertions (refusal,
	// failover) cannot race a premature half-open trial.
	cc := newChaosCluster(t, 2, func(cfg *Config) { cfg.BreakerCooldown = 500 * time.Millisecond })
	ctx := context.Background()
	p := helix(6)
	params := cheapParams()

	first, err := cc.c.Submit(ctx, p, params)
	if err != nil {
		t.Fatalf("baseline submit: %v", err)
	}
	owner := cc.instanceIdx(t, first.ID)
	if got := cc.breakerStateOf(t, owner); got != "closed" {
		t.Fatalf("baseline breaker state = %q, want closed", got)
	}

	// The owner's v1 plane starts failing; probes stay green. Repeated
	// submissions of the owned topology are relayed 500s until the breaker
	// opens at the threshold (2) and the shard leaves the ring.
	cc.proxies[owner].Set(chaosproxy.Fault{ErrorProb: 1, Match: v1Only})
	var relayErrs int
	for i := 0; i < 10 && cc.breakerStateOf(t, owner) != "open"; i++ {
		if _, err := cc.c.Submit(ctx, p, params); err != nil {
			relayErrs++
		}
	}
	if got := cc.breakerStateOf(t, owner); got != "open" {
		t.Fatalf("breaker state after failure storm = %q, want open", got)
	}
	if relayErrs == 0 {
		t.Fatal("no failed submissions recorded before the breaker opened")
	}
	if m := cc.rt.Snapshot(); m.RingShards != 1 {
		t.Fatalf("ring shards with one breaker open = %d, want 1", m.RingShards)
	}

	// A request directed at the broken shard (job lookup by instance) is
	// refused with an honest retry signal, not a false 404.
	_, err = cc.c.Status(ctx, first.ID)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.HTTPStatus != http.StatusServiceUnavailable {
		t.Fatalf("directed request to open shard: %v, want 503", err)
	}
	if cc.rt.Snapshot().BreakerRefused == 0 {
		t.Fatal("breaker refusals not counted")
	}

	// New submissions of the same key fail over to the surviving replica.
	st := cc.submitRetry(t, p, params)
	if got := cc.instanceIdx(t, st.ID); got == owner {
		t.Fatalf("submission routed to the broken shard %d", owner)
	}

	// Recovery: faults clear, the cooldown elapses, and a probe sweep
	// half-opens the breaker (the shard re-enters the ring for its trial).
	cc.proxies[owner].Clear()
	time.Sleep(600 * time.Millisecond) // > BreakerCooldown
	cc.rt.CheckNow(ctx)
	if got := cc.breakerStateOf(t, owner); got != "half_open" {
		t.Fatalf("breaker state after cooldown = %q, want half_open", got)
	}

	// The trial request succeeds and closes the breaker.
	st = cc.submitRetry(t, p, params)
	if got := cc.instanceIdx(t, st.ID); got != owner {
		t.Fatalf("trial submission routed to %d, want recovered owner %d", got, owner)
	}
	if got := cc.breakerStateOf(t, owner); got != "closed" {
		t.Fatalf("breaker state after trial success = %q, want closed", got)
	}
	sm := shardMetricsOf(t, cc.rt, cc.proxyURL[owner])
	if sm.BreakerOpens < 1 || sm.BreakerHalfOpens < 1 || sm.BreakerCloses < 1 {
		t.Fatalf("transition counters = %+v, want every transition recorded", sm)
	}
}

// TestMigrationFailureKicksRepair pins the hand-off between the two
// self-healing halves: a migration pass that leaves posteriors behind
// must schedule an immediate anti-entropy sweep (and the posterior stays
// fail-safe on its source meanwhile).
func TestMigrationFailureKicksRepair(t *testing.T) {
	cc := newChaosCluster(t, 2, nil)
	params := cheapParams()
	params.KeepPosterior = true
	st := cc.submitRetry(t, helix(6), params)
	cc.waitDoneRetry(t, st.ID)
	owner := cc.instanceIdx(t, st.ID)
	other := 1 - owner

	// Every transfer import into the destination fails; the drain's
	// migration pass retries each PUT under the transfer policy, then
	// counts the posterior failed.
	cc.proxies[other].Set(chaosproxy.Fault{
		ErrorProb: 1,
		Match:     func(r *http.Request) bool { return r.Method == http.MethodPut && v1Only(r) },
	})
	rep := cc.rt.drainShard(context.Background(), cc.rt.findShard(cc.proxyURL[owner]), time.Second)
	if rep.Migration.Failed == 0 {
		t.Fatalf("drain migration = %+v, want failures against the faulted destination", rep.Migration)
	}
	if len(cc.rt.repairKick) != 1 {
		t.Fatal("failed migration pass did not kick the repair loop")
	}
	if errs := cc.proxies[other].Stats().Errors; errs < int64(cc.rt.cfg.Retry.MaxAttempts) {
		t.Fatalf("destination saw %d injected errors, want >= %d (the PUT must retry)", errs, cc.rt.cfg.Retry.MaxAttempts)
	}

	// Fail-safe: the posterior never left the drained source.
	held, _ := cc.holdings(t)
	if holders := held[st.ID]; len(holders) != 1 || holders[0] != owner {
		t.Fatalf("posterior holders after failed migration = %v, want intact on source %d", holders, owner)
	}
}

// TestChaosSelfHealing is the acceptance scenario: a 3-shard cluster
// behind chaos proxies loses a shard mid-life, serves a scripted fault
// window (30%% of v1 requests reset or 5xx'd), restarts the shard, and
// must converge — every posterior on exactly its ring owner within two
// repair sweeps, none lost, the dead shard's breaker observed in all
// three states along the way.
func TestChaosSelfHealing(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenario is long")
	}
	cc := newChaosCluster(t, 3, nil)
	ctx := context.Background()
	params := cheapParams()
	params.KeepPosterior = true

	// Phase 1: a baseline population of retained posteriors. Molecule
	// sizes stay small: a posterior's footprint is O(atoms²) — full
	// covariance — and the scenario needs every document to fit both the
	// per-shard store budget and the transfer protocol's body limit, so
	// that any failure the assertions see is an injected one.
	var jobs []string
	for bp := 2; bp <= 9; bp++ {
		st := cc.submitRetry(t, helix(bp), params)
		cc.waitDoneRetry(t, st.ID)
		jobs = append(jobs, st.ID)
	}

	// Phase 2: kill one shard — the owner of the first baseline job. Its
	// posteriors survive on disk; the proxy stays up, so the dead backend
	// reads as 502s, a live-traffic failure probes cannot express.
	p0 := helix(2)
	victim := cc.instanceIdx(t, jobs[0])
	cc.backends[victim].stop()

	// Phase 3: submissions keyed to the dead shard open its breaker, then
	// fail over; the cluster keeps accepting work.
	for i := 0; i < 10 && cc.breakerStateOf(t, victim) != "open"; i++ {
		cc.c.Submit(ctx, p0, params) //nolint:errcheck
	}
	if got := cc.breakerStateOf(t, victim); got != "open" {
		t.Fatalf("victim breaker = %q after failure storm, want open", got)
	}
	st := cc.submitRetry(t, p0, params)
	cc.waitDoneRetry(t, st.ID)
	jobs = append(jobs, st.ID)

	// Phase 4: the fault window — 30% of v1 traffic to the survivors is
	// reset mid-body or answered 5xx while work keeps flowing.
	for i, p := range cc.proxies {
		if i != victim {
			p.Set(chaosproxy.Fault{ResetProb: 0.15, ErrorProb: 0.15, Match: v1Only})
		}
	}
	for bp := 2; bp <= 6; bp++ {
		st := cc.submitRetry(t, withExtraDistances(helix(bp)), params)
		cc.waitDoneRetry(t, st.ID)
		jobs = append(jobs, st.ID)
	}

	// Phase 5: the dead shard restarts on its old address with its old
	// store. One probe sweep readmits it; the elapsed cooldown half-opens
	// its breaker, and the trial submission closes it.
	cc.backends[victim].start(t)
	time.Sleep(150 * time.Millisecond) // > BreakerCooldown
	cc.rt.CheckNow(ctx)
	if got := cc.breakerStateOf(t, victim); got != "half_open" {
		t.Fatalf("victim breaker after restart = %q, want half_open", got)
	}
	st = cc.submitRetry(t, p0, params)
	cc.waitDoneRetry(t, st.ID)
	jobs = append(jobs, st.ID)
	if got := cc.breakerStateOf(t, victim); got != "closed" {
		t.Fatalf("victim breaker after trial = %q, want closed", got)
	}

	// Phase 6: repair sweep #1 runs while the survivors still inject
	// faults — transfers may die mid-body, and every failure must be
	// fail-safe. The window then closes and sweep #2 must converge.
	cc.waitQuiet(t)
	rep1 := cc.rt.RepairNow(ctx)
	t.Logf("sweep 1 (faulted): %+v", rep1)
	for _, p := range cc.proxies {
		p.Clear()
	}
	rep2 := cc.rt.RepairNow(ctx)
	t.Logf("sweep 2 (clean): %+v", rep2)
	if rep2.Failed > 0 {
		t.Fatalf("clean sweep still failing: %+v", rep2)
	}

	// The fault window was real: the survivors injected resets or errors.
	var injected int64
	for i, p := range cc.proxies {
		if i != victim {
			st := p.Stats()
			injected += st.Resets + st.Errors
		}
	}
	if injected == 0 {
		t.Fatal("fault window injected nothing; the scenario proved nothing")
	}

	// Convergence: every posterior — the recorded jobs and any orphans
	// minted when a reset cut a submit response — is held by exactly one
	// shard, and that shard is its ring owner. Zero loss: every recorded
	// job's posterior survived the whole scenario.
	held, topo := cc.holdings(t)
	ring := cc.rt.currentRing()
	for job, holders := range held {
		if len(holders) != 1 {
			t.Errorf("job %s held by %d shards %v, want exactly 1", job, len(holders), holders)
			continue
		}
		ownerSh := ring.lookup(topo[job])
		if ownerSh == nil {
			t.Errorf("job %s has no ring owner", job)
			continue
		}
		if want := cc.backendIdxOf(t, ownerSh); holders[0] != want {
			t.Errorf("job %s held by backend %d, ring owner is %d", job, holders[0], want)
		}
	}
	for _, id := range jobs {
		if _, ok := held[id]; !ok {
			t.Errorf("posterior of %s lost", id)
		}
	}
	if t.Failed() {
		t.Logf("repair metrics: %+v", cc.rt.Snapshot().Repair)
	}
}
