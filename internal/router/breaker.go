package router

// Per-shard circuit breaking and flap suppression: the self-healing
// layer's answer to two failure shapes the probe loop alone handles
// badly.
//
// The circuit breaker is driven by live forward outcomes, not probes: a
// shard whose /healthz answers but whose v1 traffic fails (a wedged
// handler, an asymmetric network fault, an interposed proxy injecting
// errors) accrues consecutive forward failures until the breaker opens
// and the shard leaves the ring. After a cooldown the breaker half-opens:
// the shard re-enters the ring but admits exactly one trial request at a
// time — a success closes the breaker, a failure reopens it for another
// cooldown. Requests refused by an open (or trial-occupied half-open)
// breaker fail over to the next ring replica exactly like a saturated
// shard.
//
// Flap suppression lives in the probe path (health.go) but shares this
// file's vocabulary: a shard readmitted to the ring too many times within
// a window is quarantined under an escalating probation — it must stay
// continuously healthy for 2, 4, 8, … consecutive probes (doubling per
// quarantine, capped) before the ring takes it back, instead of the
// single-success readmission a stable shard gets.

import (
	"net/http"
	"sync"
	"time"

	"phmse/internal/encode"
)

// BreakerState is one circuit-breaker position, exposed in /metrics.
type BreakerState int32

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits one trial request at a time; its outcome
	// decides between closed and open.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// breaker is one shard's circuit breaker. The zero value is a closed
// breaker. All transitions happen under mu; the counters are plain ints
// read under the same lock by the metrics snapshot.
type breaker struct {
	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive live-forward failures while closed
	openedAt time.Time // when the breaker last opened
	trial    bool      // a half-open trial request is in flight

	opens, halfOpens, closes int64 // lifetime transition counters
}

// allow reports whether a live forward may proceed. An open breaker whose
// cooldown has elapsed half-opens here (directed forwards reach shards
// the ring excludes, so the transition cannot rely on ring traffic
// alone). trial is true when the caller holds the half-open trial slot
// and must settle it with exactly one record or cancel.
func (b *breaker) allow(now time.Time, cooldown time.Duration) (ok, trial bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if now.Sub(b.openedAt) < cooldown {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.halfOpens++
		b.trial = true
		return true, true
	default: // half-open
		if b.trial {
			return false, false
		}
		b.trial = true
		return true, true
	}
}

// tick drives the time-based open → half-open transition from the probe
// loop, so a shard the ring excluded (no directed traffic) still gets its
// trial once the cooldown elapses. Reports whether ring visibility
// changed (the half-open shard re-enters the ring to receive the trial).
func (b *breaker) tick(now time.Time, cooldown time.Duration) (changed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && now.Sub(b.openedAt) >= cooldown {
		b.state = BreakerHalfOpen
		b.halfOpens++
		return true
	}
	return false
}

// record applies one live forward outcome. wasTrial marks the settling of
// a half-open trial slot. threshold is the consecutive-failure count that
// opens a closed breaker. Reports whether the shard's ring visibility
// changed (a transition into or out of BreakerOpen), in which case the
// caller must rebuild the ring.
func (b *breaker) record(success, wasTrial bool, threshold int, now time.Time) (changed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if wasTrial {
		b.trial = false
	}
	if success {
		b.fails = 0
		if b.state != BreakerClosed {
			// A half-open trial succeeded — or a directed forward raced an
			// open transition and proved the shard healthy either way.
			changed = b.state == BreakerOpen
			b.state = BreakerClosed
			b.closes++
		}
		return changed
	}
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = now
		b.opens++
		return true
	case BreakerClosed:
		b.fails++
		if threshold > 0 && b.fails >= threshold {
			b.state = BreakerOpen
			b.openedAt = now
			b.opens++
			return true
		}
	}
	// Already open: pre-transition stragglers add no information.
	return false
}

// cancel releases a trial slot whose request never produced an outcome
// (refused by the in-flight limiter, or the caller's context died before
// the send).
func (b *breaker) cancel(wasTrial bool) {
	if !wasTrial {
		return
	}
	b.mu.Lock()
	b.trial = false
	b.mu.Unlock()
}

// snapshot reads the breaker for the metrics document.
func (b *breaker) snapshot() (state BreakerState, opens, halfOpens, closes int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens, b.halfOpens, b.closes
}

// isOpen reports whether the breaker currently fences the shard out of
// the ring. Half-open shards stay in the ring — the trial needs traffic.
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerOpen
}

// breakerAllow asks a shard's breaker to admit one live forward; always
// yes when breaking is disabled.
func (rt *Router) breakerAllow(sh *shard) (ok, trial bool) {
	if rt.cfg.BreakerFailures <= 0 {
		return true, false
	}
	return sh.brk.allow(time.Now(), rt.cfg.BreakerCooldown)
}

// breakerRecord settles one live forward outcome and rebuilds the ring on
// an open/close transition.
func (rt *Router) breakerRecord(sh *shard, success, trial bool) {
	if rt.cfg.BreakerFailures <= 0 {
		return
	}
	if sh.brk.record(success, trial, rt.cfg.BreakerFailures, time.Now()) {
		rt.rebuildRing()
	}
}

// breakerCancel releases an unused trial slot.
func (rt *Router) breakerCancel(sh *shard, trial bool) {
	if rt.cfg.BreakerFailures > 0 {
		sh.brk.cancel(trial)
	}
}

// breakerState reads a shard's current breaker position.
func (rt *Router) breakerState(sh *shard) BreakerState {
	st, _, _, _ := sh.brk.snapshot()
	return st
}

// writeBreakerRefused answers a directed request whose owning shard's
// breaker refused it: the shard exists and the job may well live there,
// so the honest answer is "temporarily unavailable, retry" — not 404.
func (rt *Router) writeBreakerRefused(w http.ResponseWriter, shardName string) {
	rt.breakerRefused.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, encode.CodeNoShard,
		"shard "+shardName+" circuit open; retry")
}
