package router

import (
	"context"
	"testing"
	"time"
)

// TestBreakerStateMachine drives one breaker through its full cycle at
// the struct level: closed → open at the failure threshold, refusals
// during the cooldown, exactly one half-open trial at a time, and the
// trial's outcome deciding between closed and another open period.
func TestBreakerStateMachine(t *testing.T) {
	var b breaker
	now := time.Now()
	const threshold = 3
	const cooldown = time.Second

	// Closed passes traffic; failures below the threshold keep it closed.
	for i := 0; i < threshold-1; i++ {
		if ok, trial := b.allow(now, cooldown); !ok || trial {
			t.Fatalf("closed allow #%d = (%v,%v), want (true,false)", i, ok, trial)
		}
		if changed := b.record(false, false, threshold, now); changed {
			t.Fatalf("failure %d below threshold reported a visibility change", i+1)
		}
	}
	// A success resets the failure streak.
	b.record(true, false, threshold, now)
	if st, _, _, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state after success = %v, want closed", st)
	}

	// The threshold-th consecutive failure opens.
	for i := 0; i < threshold; i++ {
		changed := b.record(false, false, threshold, now)
		if want := i == threshold-1; changed != want {
			t.Fatalf("failure %d changed=%v, want %v", i+1, changed, want)
		}
	}
	if !b.isOpen() {
		t.Fatal("breaker not open after threshold failures")
	}
	if ok, _ := b.allow(now.Add(cooldown/2), cooldown); ok {
		t.Fatal("open breaker allowed traffic inside the cooldown")
	}
	// A post-open straggler adds no transitions.
	if changed := b.record(false, false, threshold, now); changed || !b.isOpen() {
		t.Fatal("straggler failure moved an open breaker")
	}

	// Cooldown elapsed: the next allow half-opens and hands out the single
	// trial slot; a concurrent request is refused until the trial settles.
	ok, trial := b.allow(now.Add(cooldown), cooldown)
	if !ok || !trial {
		t.Fatalf("post-cooldown allow = (%v,%v), want (true,true)", ok, trial)
	}
	if st, _, _, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", st)
	}
	if ok, _ := b.allow(now.Add(cooldown), cooldown); ok {
		t.Fatal("second request admitted while the trial is in flight")
	}

	// A failed trial reopens; a cancel frees the slot for the next trial;
	// a successful trial closes.
	if changed := b.record(false, true, threshold, now.Add(cooldown)); !changed {
		t.Fatal("failed trial did not report reopening")
	}
	if !b.isOpen() {
		t.Fatal("breaker not open after a failed trial")
	}
	ok, trial = b.allow(now.Add(2*cooldown), cooldown)
	if !ok || !trial {
		t.Fatal("no trial after the second cooldown")
	}
	b.cancel(true) // the trial request died before any outcome
	ok, trial = b.allow(now.Add(2*cooldown), cooldown)
	if !ok || !trial {
		t.Fatal("cancelled trial slot was not released")
	}
	if changed := b.record(true, true, threshold, now.Add(2*cooldown)); changed {
		t.Fatal("half-open → closed must not report a ring change (half-open was already in the ring)")
	}
	st, opens, halfOpens, closes := b.snapshot()
	if st != BreakerClosed {
		t.Fatalf("final state = %v, want closed", st)
	}
	if opens != 2 || halfOpens != 2 || closes != 1 {
		t.Fatalf("transition counters = %d/%d/%d opens/halfOpens/closes, want 2/2/1", opens, halfOpens, closes)
	}
}

// TestBreakerTick pins the probe-driven open → half-open transition: a
// shard with no directed traffic still gets its trial once the cooldown
// elapses, and tick reports the ring-visibility change exactly once.
func TestBreakerTick(t *testing.T) {
	var b breaker
	now := time.Now()
	for i := 0; i < 2; i++ {
		b.record(false, false, 2, now)
	}
	if !b.isOpen() {
		t.Fatal("breaker not open")
	}
	if b.tick(now.Add(time.Second/2), time.Second) {
		t.Fatal("tick transitioned inside the cooldown")
	}
	if !b.tick(now.Add(time.Second), time.Second) {
		t.Fatal("tick did not half-open after the cooldown")
	}
	if b.tick(now.Add(2*time.Second), time.Second) {
		t.Fatal("tick reported a second transition for the same half-open")
	}
	if st, _, _, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatalf("state after tick = %v, want half-open", st)
	}
}

// shardMetricsOf finds one shard's metrics row by base URL.
func shardMetricsOf(t *testing.T, rt *Router, base string) ShardMetrics {
	t.Helper()
	for _, sm := range rt.Snapshot().Shards {
		if sm.Base == base {
			return sm
		}
	}
	t.Fatalf("no shard %q in metrics", base)
	return ShardMetrics{}
}

// TestFlapSuppressionQuarantine bounces one shard in and out of the ring
// until flap suppression quarantines it, then verifies the escalating
// probation: readmission now takes consecutive good probes, a bad probe
// mid-probation resets the requirement, and a repeat offence doubles it.
func TestFlapSuppressionQuarantine(t *testing.T) {
	cl := newClusterWith(t, 2, "", func(cfg *Config) {
		cfg.ProbeInterval = time.Hour // probes only via CheckNow
		cfg.FlapCount = 2
		cfg.FlapWindow = time.Minute
		cfg.BreakerFailures = -1 // isolate flap suppression from breaking
		cfg.RepairInterval = -1
	})
	ctx := context.Background()
	b := cl.backends[1]

	bounce := func() {
		t.Helper()
		b.stop()
		cl.rt.CheckNow(ctx) // observe it down
		b.start(t)
	}

	// Shards start optimistic (in the ring), so the startup probe is not a
	// readmission: the first two bounces readmit immediately on one good
	// probe each — the stable-shard behaviour.
	for i := 0; i < 2; i++ {
		bounce()
		cl.rt.CheckNow(ctx)
		if sm := shardMetricsOf(t, cl.rt, b.url()); !sm.Ready || sm.Quarantines != 0 {
			t.Fatalf("clean bounce %d: ready=%v quarantines=%d, want immediate readmission",
				i+1, sm.Ready, sm.Quarantines)
		}
	}

	// The third bounce finds FlapCount readmissions inside the window:
	// quarantine, probation of 2 consecutive good probes.
	bounce()
	cl.rt.CheckNow(ctx)
	sm := shardMetricsOf(t, cl.rt, b.url())
	if sm.Ready || sm.Quarantines != 1 || sm.ProbationLeft != 2 {
		t.Fatalf("flapping bounce: ready=%v quarantines=%d probation=%d, want quarantined with probation 2",
			sm.Ready, sm.Quarantines, sm.ProbationLeft)
	}

	// Two more good probes serve the probation and readmit.
	cl.rt.CheckNow(ctx)
	if sm := shardMetricsOf(t, cl.rt, b.url()); sm.Ready || sm.ProbationLeft != 1 {
		t.Fatalf("mid-probation: ready=%v probation=%d, want out with probation 1", sm.Ready, sm.ProbationLeft)
	}
	cl.rt.CheckNow(ctx)
	if sm := shardMetricsOf(t, cl.rt, b.url()); !sm.Ready || sm.ProbationLeft != 0 {
		t.Fatalf("after probation: ready=%v probation=%d, want readmitted", sm.Ready, sm.ProbationLeft)
	}
	cl.waitRing(t, 2, 0)

	// A repeat offence doubles the probation (quarantine #2 → 4 probes),
	// and a bad probe mid-probation resets the full requirement.
	bounce()
	cl.rt.CheckNow(ctx)
	sm = shardMetricsOf(t, cl.rt, b.url())
	if sm.Ready || sm.Quarantines != 2 || sm.ProbationLeft != 4 {
		t.Fatalf("repeat offence: ready=%v quarantines=%d probation=%d, want probation 4",
			sm.Ready, sm.Quarantines, sm.ProbationLeft)
	}
	cl.rt.CheckNow(ctx)
	cl.rt.CheckNow(ctx)
	if sm := shardMetricsOf(t, cl.rt, b.url()); sm.ProbationLeft != 2 {
		t.Fatalf("probation after 2 good probes = %d, want 2", sm.ProbationLeft)
	}
	b.stop()
	cl.rt.CheckNow(ctx) // bad probe: probation resets to the full 4
	b.start(t)
	cl.rt.CheckNow(ctx)
	if sm := shardMetricsOf(t, cl.rt, b.url()); sm.ProbationLeft != 3 {
		t.Fatalf("probation after reset + 1 good probe = %d, want 3 (reset to 4, then one served)", sm.ProbationLeft)
	}
	for i := 0; i < 3; i++ {
		cl.rt.CheckNow(ctx)
	}
	if sm := shardMetricsOf(t, cl.rt, b.url()); !sm.Ready {
		t.Fatal("shard never readmitted after serving the reset probation")
	}
}
