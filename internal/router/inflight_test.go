package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"phmse/internal/encode"
)

// stubShard is a minimal fake phmsed: healthy, and its job endpoint
// blocks until released so the test can hold forwarded requests in
// flight deterministically.
type stubShard struct {
	ts      *httptest.Server
	release chan struct{}
	served  atomic.Int64
}

func newStubShard(t *testing.T, instance string) *stubShard {
	t.Helper()
	st := &stubShard{release: make(chan struct{})}
	mux := http.NewServeMux()
	health := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(encode.HealthStatus{Status: "ok", InstanceID: instance}) //nolint:errcheck
	}
	mux.HandleFunc("GET /healthz", health)
	mux.HandleFunc("GET /readyz", health)
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st.served.Add(1)
		<-st.release
		w.Header().Set("X-Phmsed-Instance", instance)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"id": %q, "state": "done"}`, r.PathValue("id"))
	})
	st.ts = httptest.NewServer(mux)
	t.Cleanup(st.ts.Close)
	return st
}

// releaseAll unblocks every held job request, exactly once.
func (st *stubShard) releaseAll() {
	select {
	case <-st.release:
	default:
		close(st.release)
	}
}

// With -shard-inflight 2, the third concurrent request to a shard must be
// refused with 429 + Retry-After and the queue_full envelope code while
// two are held in flight, and admitted again once a slot frees.
func TestShardInflightLimitRejectsExcess(t *testing.T) {
	const limit = 2
	st := newStubShard(t, "s1")
	rt, err := New(Config{
		Shards:        []string{st.ts.URL},
		ShardInflight: limit,
		ProbeInterval: time.Hour, // no probe churn during the test
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	t.Cleanup(st.releaseAll)
	rts := httptest.NewServer(rt)
	t.Cleanup(rts.Close)

	// Qualify the id with the stub's instance so the request is a direct
	// forward, not a broadcast. The router learns instances from probes;
	// force one now.
	rt.CheckNow(context.Background())

	get := func() *http.Response {
		resp, err := http.Get(rts.URL + "/v1/jobs/s1.job-000001")
		if err != nil {
			t.Errorf("get: %v", err)
			return nil
		}
		return resp
	}

	// Hold `limit` requests in flight inside the stub.
	var wg sync.WaitGroup
	held := make([]*http.Response, limit)
	for i := range held {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			held[i] = get()
		}(i)
	}
	for int(st.served.Load()) < limit {
		time.Sleep(time.Millisecond)
	}

	// The shard is saturated: one more request bounces at the router.
	resp := get()
	if resp == nil {
		t.FailNow()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated forward: http %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("saturated forward: no Retry-After hint")
	}
	var env encode.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != encode.CodeQueueFull {
		t.Fatalf("saturated forward: code %q, want %q", env.Error.Code, encode.CodeQueueFull)
	}

	m := rt.Snapshot()
	if m.ShardInflightLimit != limit {
		t.Fatalf("metrics limit = %d, want %d", m.ShardInflightLimit, limit)
	}
	if m.Saturated < 1 {
		t.Fatalf("metrics saturated = %d, want >= 1", m.Saturated)
	}
	if got := m.Shards[0].Inflight; got != limit {
		t.Fatalf("shard inflight gauge = %d, want %d", got, limit)
	}
	if got := m.Shards[0].Rejected; got < 1 {
		t.Fatalf("shard rejected = %d, want >= 1", got)
	}

	// Free the held slots; the shard must be admitting again.
	st.releaseAll()
	wg.Wait()
	for _, r := range held {
		if r == nil {
			t.FailNow()
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("held forward: http %d, want 200", r.StatusCode)
		}
	}
	resp = get()
	if resp == nil {
		t.FailNow()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release forward: http %d, want 200", resp.StatusCode)
	}
	if m := rt.Snapshot(); m.Shards[0].Inflight != 0 {
		t.Fatalf("idle inflight gauge = %d, want 0; slot leaked", m.Shards[0].Inflight)
	}
}

// The zero value keeps today's behavior: no limit, nothing rejected.
func TestShardInflightUnlimitedByDefault(t *testing.T) {
	st := newStubShard(t, "s1")
	st.releaseAll() // never block
	rt, err := New(Config{Shards: []string{st.ts.URL}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rts := httptest.NewServer(rt)
	t.Cleanup(rts.Close)
	rt.CheckNow(context.Background())

	var wg sync.WaitGroup
	var bad atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(rts.URL + "/v1/jobs/s1.job-000007")
			if err != nil {
				bad.Add(1)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				bad.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d of 16 unlimited forwards failed", n)
	}
	m := rt.Snapshot()
	if m.Saturated != 0 || m.Shards[0].Rejected != 0 {
		t.Fatalf("unlimited config rejected requests: saturated %d, rejected %d", m.Saturated, m.Shards[0].Rejected)
	}
}
