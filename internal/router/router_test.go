package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"phmse/internal/client"
	"phmse/internal/constraint"
	"phmse/internal/encode"
	"phmse/internal/geom"
	"phmse/internal/molecule"
	"phmse/internal/server"
)

// helix returns a small anchored helix problem that converges quickly
// under default solver parameters.
func helix(bp int) *molecule.Problem {
	return molecule.WithAnchors(molecule.Helix(bp), 4, 0.05)
}

// withExtraDistances returns a problem over the same molecule with extra
// long-range distance measurements — same structure hash (warm-start
// compatible), different topology hash (different ring key).
func withExtraDistances(p *molecule.Problem) *molecule.Problem {
	n := len(p.Atoms)
	cons := append([]constraint.Constraint(nil), p.Constraints...)
	for _, pr := range [][2]int{{0, n - 1}, {1, n - 2}, {n / 4, 3 * n / 4}} {
		d := geom.Dist(p.Atoms[pr[0]].Pos, p.Atoms[pr[1]].Pos)
		cons = append(cons, constraint.Distance{I: pr[0], J: pr[1], Target: d, Sigma: 0.1})
	}
	return &molecule.Problem{Name: p.Name + "+extra", Atoms: p.Atoms, Constraints: cons, Tree: p.Tree}
}

// cheapParams caps the solve at two constraint cycles: a capped solve
// still completes as done (and retains its posterior when asked), and the
// routing tier does not care whether the estimate converged.
func cheapParams() encode.SolveParams {
	return encode.SolveParams{MaxCycles: 2, Perturb: 0.4, Seed: 17}
}

// backend is one phmsed instance under the router, restartable on a
// stable address so shard-restart scenarios can be exercised.
type backend struct {
	name  string
	dir   string
	addr  string
	token string // server-side AdminToken gating posterior imports
	srv   *server.Server
	ts    *httptest.Server
	up    bool
}

func (b *backend) start(t *testing.T) {
	t.Helper()
	addr := b.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	b.addr = l.Addr().String()
	b.srv = server.New(server.Config{
		Workers:        2,
		QueueDepth:     256,
		PosteriorBytes: 64 << 20,
		InstanceID:     b.name,
		PosteriorDir:   b.dir,
		AdminToken:     b.token,
	})
	b.ts = &httptest.Server{Listener: l, Config: &http.Server{Handler: b.srv}}
	b.ts.Start()
	b.up = true
}

func (b *backend) stop() {
	if !b.up {
		return
	}
	b.up = false
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	b.srv.Shutdown(ctx) //nolint:errcheck
	b.ts.Close()
}

func (b *backend) url() string { return "http://" + b.addr }

// cluster is a router over n live backends plus a typed client bound to
// the router — the same client the daemon's own tests use, pointed one
// tier up.
type testCluster struct {
	rt       *Router
	rts      *httptest.Server
	c        *client.Client
	backends []*backend
}

func newCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	return newClusterWith(t, n, "", nil)
}

// newClusterWith starts a cluster whose backends and router share the
// given admin token and whose router config may be adjusted before New.
func newClusterWith(t *testing.T, n int, token string, mut func(*Config)) *testCluster {
	t.Helper()
	cl := &testCluster{}
	var bases []string
	for i := 0; i < n; i++ {
		b := &backend{name: fmt.Sprintf("s%d", i+1), dir: t.TempDir(), token: token}
		b.start(t)
		cl.backends = append(cl.backends, b)
		bases = append(bases, b.url())
	}
	cfg := Config{
		Shards:        bases,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		AdminToken:    token,
		Retry:         client.RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.rt = rt
	cl.rts = httptest.NewServer(rt)
	cl.c = client.New(cl.rts.URL)
	rt.CheckNow(context.Background()) // learn instance ids before the first submit
	t.Cleanup(func() {
		cl.rts.Close()
		rt.Close()
		for _, b := range cl.backends {
			b.stop()
		}
	})
	return cl
}

// waitRing re-probes until the ring settles at the wanted shape — a CPU
// starved machine can time out a probe of a healthy shard, so a single
// forced sweep is not decisive.
func (cl *testCluster) waitRing(t *testing.T, ready, unhealthy int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		cl.rt.CheckNow(context.Background())
		m := cl.rt.Snapshot()
		if m.RingShards == ready && m.UnhealthyShards == unhealthy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never settled: ring=%d unhealthy=%d, want %d/%d",
				m.RingShards, m.UnhealthyShards, ready, unhealthy)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// byInstance finds the backend whose instance id minted the given job id.
func (cl *testCluster) byInstance(t *testing.T, id string) *backend {
	t.Helper()
	instance := encode.JobInstance(id)
	for _, b := range cl.backends {
		if b.name == instance {
			return b
		}
	}
	t.Fatalf("job id %q names no cluster backend", id)
	return nil
}

func (cl *testCluster) submit(t *testing.T, p *molecule.Problem, params encode.SolveParams) encode.JobStatus {
	t.Helper()
	st, err := cl.c.Submit(context.Background(), p, params)
	if err != nil {
		t.Fatalf("submit via router: %v", err)
	}
	if encode.JobInstance(st.ID) == "" {
		t.Fatalf("job id %q carries no instance qualifier", st.ID)
	}
	return st
}

func (cl *testCluster) waitDone(t *testing.T, id string) encode.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := cl.c.Wait(ctx, id, 10*time.Millisecond, encode.JobDone)
	if err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	return st
}

// TestRoutingStability: identical topologies must land on the same shard
// every time (plan-cache and posterior locality), while distinct
// topologies spread across the cluster.
func TestRoutingStability(t *testing.T) {
	cl := newCluster(t, 3)
	p := helix(6)
	want := encode.JobInstance(cl.submit(t, p, cheapParams()).ID)
	for i := 0; i < 99; i++ {
		st := cl.submit(t, p, cheapParams())
		if got := encode.JobInstance(st.ID); got != want {
			t.Fatalf("submit %d of identical topology routed to %q, earlier ones to %q", i+2, got, want)
		}
	}
	seen := map[string]bool{}
	for bp := 4; bp <= 16; bp++ {
		seen[encode.JobInstance(cl.submit(t, helix(bp), cheapParams()).ID)] = true
	}
	if len(seen) < 2 {
		t.Errorf("13 distinct topologies all routed to one shard %v; want spread", seen)
	}
}

// TestShardDeathFailover: killing a shard must not fail the next submit —
// the router ejects it on the dial failure and fails over to the next
// ring replica.
func TestShardDeathFailover(t *testing.T) {
	cl := newCluster(t, 3)
	p := helix(7)
	first := cl.submit(t, p, cheapParams())
	owner := encode.JobInstance(first.ID)
	cl.byInstance(t, first.ID).stop()

	st := cl.submit(t, p, cheapParams())
	if got := encode.JobInstance(st.ID); got == owner {
		t.Fatalf("submit after shard death still routed to dead shard %q", owner)
	}
	cl.waitDone(t, st.ID)
	cl.waitRing(t, 2, 1)
}

// TestWarmStartLocality: a warm-started submission must reach the shard
// retaining the referenced posterior even when its own topology would ring
// elsewhere.
func TestWarmStartLocality(t *testing.T) {
	cl := newCluster(t, 3)
	p := helix(8)
	params := cheapParams()
	params.KeepPosterior = true
	st := cl.submit(t, p, params)
	cl.waitDone(t, st.ID)
	owner := encode.JobInstance(st.ID)

	st2, err := cl.c.WarmStart(context.Background(), withExtraDistances(p), cheapParams(), st.ID)
	if err != nil {
		t.Fatalf("warm start via router: %v", err)
	}
	if got := encode.JobInstance(st2.ID); got != owner {
		t.Fatalf("warm start routed to %q, posterior lives on %q", got, owner)
	}
	if done := cl.waitDone(t, st2.ID); done.WarmStartFrom != st.ID {
		t.Fatalf("warm start from %q, want %q", done.WarmStartFrom, st.ID)
	}
}

// TestCrossShardListingPagination: GET /v1/jobs through the router pages
// over the union of all shards' jobs with no duplicates and no gaps.
func TestCrossShardListingPagination(t *testing.T) {
	cl := newCluster(t, 3)
	want := map[string]bool{}
	for bp := 4; bp <= 12; bp++ {
		want[cl.submit(t, helix(bp), cheapParams()).ID] = true
	}

	ctx := context.Background()
	got := map[string]bool{}
	after := ""
	for pages := 0; ; pages++ {
		if pages > 20 {
			t.Fatal("pagination did not terminate")
		}
		list, err := cl.c.List(ctx, client.ListOptions{Limit: 2, After: after})
		if err != nil {
			t.Fatalf("list page %d: %v", pages, err)
		}
		if len(list.Jobs) > 2 {
			t.Fatalf("page %d has %d jobs, limit 2", pages, len(list.Jobs))
		}
		for _, st := range list.Jobs {
			if got[st.ID] {
				t.Fatalf("job %s delivered twice", st.ID)
			}
			got[st.ID] = true
		}
		if list.NextAfter == "" {
			break
		}
		after = list.NextAfter
	}
	if len(got) != len(want) {
		t.Fatalf("paged %d jobs, submitted %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("submitted job %s never listed", id)
		}
	}

	// A backend's own cursor is meaningless at the router.
	if _, err := cl.c.List(ctx, client.ListOptions{After: "job-000001"}); err == nil {
		t.Fatal("bare backend cursor accepted by router listing")
	}
}

// TestListingShardErrorKeepsCursor: a live shard that fails to answer the
// list fan-out must not terminate pagination even when the merged page
// comes up short — the routed page still carries a composite cursor, with
// the errored shard's position untouched, so re-paging picks its jobs up
// once it recovers instead of silently dropping them.
func TestListingShardErrorKeepsCursor(t *testing.T) {
	mkShard := func(instance string, jobs []encode.JobStatus, healthy *atomic.Bool) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch r.URL.Path {
			case "/healthz", "/readyz":
				json.NewEncoder(w).Encode(encode.HealthStatus{Status: "ok", InstanceID: instance}) //nolint:errcheck
			case "/v1/jobs":
				if healthy != nil && !healthy.Load() {
					http.Error(w, "boom", http.StatusInternalServerError)
					return
				}
				after := r.URL.Query().Get("after")
				out := encode.JobList{Jobs: []encode.JobStatus{}}
				for _, st := range jobs {
					if after == "" || st.ID > after {
						out.Jobs = append(out.Jobs, st)
					}
				}
				json.NewEncoder(w).Encode(out) //nolint:errcheck
			default:
				http.NotFound(w, r)
			}
		}))
	}
	var flakyUp atomic.Bool
	a := mkShard("a", []encode.JobStatus{
		{ID: "a.job-000001", State: encode.JobDone, SubmittedAt: "2026-08-07T00:00:01Z"},
	}, nil)
	defer a.Close()
	b := mkShard("b", []encode.JobStatus{
		{ID: "b.job-000001", State: encode.JobDone, SubmittedAt: "2026-08-07T00:00:02Z"},
	}, &flakyUp)
	defer b.Close()

	// A probe interval long enough that the fan-out, not the prober,
	// decides what this test observes.
	rt, err := New(Config{Shards: []string{a.URL, b.URL}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt)
	defer rts.Close()
	c := client.New(rts.URL)
	ctx := context.Background()

	list, err := c.List(ctx, client.ListOptions{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != "a.job-000001" {
		t.Fatalf("page with one shard erroring: %+v, want only a.job-000001", list.Jobs)
	}
	if list.NextAfter == "" {
		t.Fatal("short page with an errored shard terminated pagination; its jobs would be silently dropped")
	}

	// The shard recovers; re-paging with the same cursor surfaces its jobs.
	flakyUp.Store(true)
	list2, err := c.List(ctx, client.ListOptions{Limit: 10, After: list.NextAfter})
	if err != nil {
		t.Fatal(err)
	}
	if len(list2.Jobs) != 1 || list2.Jobs[0].ID != "b.job-000001" {
		t.Fatalf("re-page after recovery: %+v, want only b.job-000001", list2.Jobs)
	}
	if list2.NextAfter != "" {
		t.Fatalf("fully-answered final page still carries cursor %q", list2.NextAfter)
	}
}

// TestAllShardsDown503: with every shard gone the router answers the
// structured no_shard envelope rather than hanging or garbling.
func TestAllShardsDown503(t *testing.T) {
	cl := newCluster(t, 2)
	st := cl.submit(t, helix(5), cheapParams())
	cl.waitDone(t, st.ID)
	for _, b := range cl.backends {
		b.stop()
	}
	cl.waitRing(t, 0, 2)

	var body bytes.Buffer
	if err := encode.WriteProblem(&body, helix(5)); err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(encode.SolveRequest{Problem: body.Bytes()})

	checks := []struct {
		method, path string
		body         []byte
	}{
		{http.MethodPost, "/v1/solve", req},
		{http.MethodGet, "/v1/jobs", nil},
		{http.MethodGet, "/v1/jobs/" + st.ID, nil},
	}
	for _, c := range checks {
		hreq, err := http.NewRequest(c.method, cl.rts.URL+c.path, bytes.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatalf("%s %s: %v", c.method, c.path, err)
		}
		var env encode.ErrorEnvelope
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s %s: decoding envelope: %v", c.method, c.path, err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != encode.CodeNoShard {
			t.Fatalf("%s %s: got %d/%q, want 503/%q", c.method, c.path, resp.StatusCode, env.Error.Code, encode.CodeNoShard)
		}
	}

	resp, err := http.Get(cl.rts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rh RouterHealth
	err = json.NewDecoder(resp.Body).Decode(&rh)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || rh.Status != "no_shard" || rh.ReadyShards != 0 {
		t.Fatalf("readyz with all shards down: %d %+v", resp.StatusCode, rh)
	}
}

// TestPosteriorSurvivesRestart: restarting a shard (same address, same
// -instance, same -posterior-dir) must serve a warm start from the
// posterior reloaded off disk.
func TestPosteriorSurvivesRestart(t *testing.T) {
	cl := newCluster(t, 3)
	p := helix(8)
	// A cold job first so the kept posterior's id is not the shard's first
	// — the restarted daemon reuses low ids for new work.
	cl.submit(t, p, cheapParams())
	params := cheapParams()
	params.KeepPosterior = true
	st := cl.submit(t, p, params)
	cl.waitDone(t, st.ID)

	b := cl.byInstance(t, st.ID)
	b.stop()
	b.start(t) // same addr, instance, posterior dir
	cl.waitRing(t, 3, 0)

	var m server.Metrics
	resp, err := http.Get(b.url() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.Posteriors.Loaded < 1 {
		t.Fatalf("restarted shard loaded %d posterior snapshots, want >= 1", m.Posteriors.Loaded)
	}

	st2, err := cl.c.WarmStart(context.Background(), withExtraDistances(p), cheapParams(), st.ID)
	if err != nil {
		t.Fatalf("warm start after shard restart: %v", err)
	}
	if got := encode.JobInstance(st2.ID); got != b.name {
		t.Fatalf("post-restart warm start routed to %q, want %q", got, b.name)
	}
	if done := cl.waitDone(t, st2.ID); done.WarmStartFrom != st.ID {
		t.Fatalf("post-restart warm start from %q, want %q", done.WarmStartFrom, st.ID)
	}
}
