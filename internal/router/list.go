package router

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"phmse/internal/encode"
)

// Cross-shard job listing: GET /v1/jobs fans out to every live shard,
// merges the per-shard pages in submission-time order, and returns a
// composite cursor that records each shard's own pagination position — so
// the backends' cheap lexicographic "after" cursors keep working per
// shard while the merged listing pages cleanly across shards.

// maxListLimit mirrors the daemon's page cap.
const maxListLimit = 500

// cursorPrefix marks a router-issued composite cursor. Backend cursors
// (bare job ids) are meaningless at the router, which owns no jobs.
const cursorPrefix = "v1:"

// encodeCursor packs the per-shard after positions (keyed by shard name)
// into an opaque cursor.
func encodeCursor(c map[string]string) string {
	data, _ := json.Marshal(c) //nolint:errcheck // map[string]string cannot fail
	return cursorPrefix + base64.RawURLEncoding.EncodeToString(data)
}

func decodeCursor(s string) (map[string]string, error) {
	raw, ok := strings.CutPrefix(s, cursorPrefix)
	if !ok {
		return nil, fmt.Errorf("after is not a router cursor (pass the next_after of a previous routed page)")
	}
	data, err := base64.RawURLEncoding.DecodeString(raw)
	if err != nil {
		return nil, fmt.Errorf("malformed cursor: %v", err)
	}
	var c map[string]string
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("malformed cursor: %v", err)
	}
	return c, nil
}

// taggedJob is one listed job plus the shard that reported it.
type taggedJob struct {
	st encode.JobStatus
	sh *shard
}

// lessJob orders merged listings by submission time, tie-broken by id so
// the order is total and stable across pages.
func lessJob(a, b taggedJob) bool {
	ta, errA := time.Parse(time.RFC3339Nano, a.st.SubmittedAt)
	tb, errB := time.Parse(time.RFC3339Nano, b.st.SubmittedAt)
	if errA == nil && errB == nil && !ta.Equal(tb) {
		return ta.Before(tb)
	}
	return a.st.ID < b.st.ID
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := encode.JobState(q.Get("state"))
	if state != "" && !state.Valid() {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest,
			fmt.Sprintf("unknown state %q", state))
		return
	}
	limit := 50
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, encode.CodeBadRequest,
				fmt.Sprintf("limit must be a positive integer, got %q", v))
			return
		}
		limit = n
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}
	cursor := map[string]string{}
	if after := q.Get("after"); after != "" {
		c, err := decodeCursor(after)
		if err != nil {
			writeError(w, http.StatusBadRequest, encode.CodeBadRequest, err.Error())
			return
		}
		cursor = c
	}

	var live []*shard
	for _, sh := range rt.shardList() {
		if sh.isAlive() {
			live = append(live, sh)
		}
	}
	if len(live) == 0 {
		rt.writeNoShard(w)
		return
	}
	rt.listFanouts.Add(1)

	// Fan out: each shard is asked for a full page past its own cursor, so
	// the merge always has enough candidates to fill the routed page even
	// if one shard supplies all of it.
	type shardPage struct {
		jobs []encode.JobStatus
		next string
		err  error
	}
	pages := make([]shardPage, len(live))
	var wg sync.WaitGroup
	for i, sh := range live {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			v := url.Values{}
			if state != "" {
				v.Set("state", string(state))
			}
			v.Set("limit", strconv.Itoa(limit))
			if a := cursor[sh.name]; a != "" {
				v.Set("after", a)
			}
			resp, err := rt.send(r, sh, http.MethodGet, "/v1/jobs?"+v.Encode(), nil)
			if err != nil {
				rt.failed.Add(1)
				sh.failed.Add(1)
				rt.eject(sh)
				pages[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				pages[i].err = fmt.Errorf("shard %s: http %d", sh.name, resp.StatusCode)
				discard(resp)
				return
			}
			if instance := resp.Header.Get("X-Phmsed-Instance"); instance != "" {
				rt.learnInstance(instance, sh)
			}
			var list encode.JobList
			if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
				pages[i].err = err
				return
			}
			pages[i].jobs = list.Jobs
			pages[i].next = list.NextAfter
		}(i, sh)
	}
	wg.Wait()

	// Merge in submission-time order and take one routed page. A shard
	// that errored contributes nothing this page; its cursor position is
	// untouched, so its jobs surface once it recovers rather than being
	// silently skipped.
	var merged []taggedJob
	morePerShard := false
	answered := 0
	anyErred := false
	for i, sh := range live {
		if pages[i].err != nil {
			anyErred = true
			continue
		}
		answered++
		for _, st := range pages[i].jobs {
			merged = append(merged, taggedJob{st, sh})
		}
		if pages[i].next != "" {
			morePerShard = true
		}
	}
	// A listing where no shard answered is indistinguishable from an empty
	// cluster to the caller — refuse it honestly instead.
	if answered == 0 {
		rt.writeNoShard(w)
		return
	}
	sort.Slice(merged, func(i, j int) bool { return lessJob(merged[i], merged[j]) })
	out := make([]encode.JobStatus, 0, limit)
	next := map[string]string{}
	for k, v := range cursor {
		next[k] = v
	}
	for _, tj := range merged {
		if len(out) == limit {
			break
		}
		out = append(out, tj.st)
		// Backend ids are zero-padded per instance, so the shard's own
		// lexicographic cursor advances past every id we delivered.
		next[tj.sh.name] = tj.st.ID
	}
	resp := encode.JobList{Jobs: out}
	// Page on when surplus candidates remain — and also whenever a live
	// shard failed to answer, even if this page came up short: terminating
	// the listing there would silently drop the errored shard's jobs, when
	// re-paging with the same composite cursor picks them up once it
	// recovers.
	if (len(out) == limit && (len(merged) > limit || morePerShard)) || anyErred {
		resp.NextAfter = encodeCursor(next)
	}
	writeJSON(w, http.StatusOK, resp)
}
