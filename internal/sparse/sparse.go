// Package sparse implements the compressed sparse row matrices used for
// measurement Jacobians. A batch of m scalar constraints on an n-dimensional
// state yields an m×n Jacobian H whose rows hold only a handful of non-zeros
// (six for a distance between two atoms), so the products C·Hᵀ and H·(C·Hᵀ)
// — the "d-s" dense-sparse operation class of the paper — are computed
// without ever forming H densely.
package sparse

import (
	"fmt"

	"phmse/internal/mat"
	"phmse/internal/par"
)

// Matrix is an immutable CSR (compressed sparse row) matrix.
type Matrix struct {
	rows, cols int
	rowPtr     []int     // len rows+1; row i occupies [rowPtr[i], rowPtr[i+1])
	colIdx     []int     // column index of each stored entry
	val        []float64 // value of each stored entry
}

// Builder accumulates entries row by row and produces a Matrix.
type Builder struct {
	cols   int
	rowPtr []int
	colIdx []int
	val    []float64
}

// NewBuilder returns a builder for matrices with the given number of columns.
func NewBuilder(cols int) *Builder {
	if cols < 0 {
		panic("sparse: negative column count")
	}
	return &Builder{cols: cols, rowPtr: []int{0}}
}

// AddRow appends one row given parallel slices of column indices and values.
// Indices within a row need not be sorted but must be in range and distinct.
func (b *Builder) AddRow(cols []int, vals []float64) {
	if len(cols) != len(vals) {
		panic("sparse: AddRow length mismatch")
	}
	for _, c := range cols {
		if c < 0 || c >= b.cols {
			panic(fmt.Sprintf("sparse: column %d out of %d", c, b.cols))
		}
	}
	b.colIdx = append(b.colIdx, cols...)
	b.val = append(b.val, vals...)
	b.rowPtr = append(b.rowPtr, len(b.colIdx))
}

// Build finalizes the builder into an immutable Matrix. The builder may be
// reused afterwards only via Reset.
func (b *Builder) Build() *Matrix {
	return &Matrix{
		rows:   len(b.rowPtr) - 1,
		cols:   b.cols,
		rowPtr: b.rowPtr,
		colIdx: b.colIdx,
		val:    b.val,
	}
}

// Reset clears the builder for reuse with the same column count, retaining
// allocated capacity.
func (b *Builder) Reset() {
	b.rowPtr = b.rowPtr[:1]
	b.colIdx = b.colIdx[:0]
	b.val = b.val[:0]
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.val) }

// Row returns the column indices and values of row i, aliasing the matrix
// storage. Callers must not modify the returned slices.
func (m *Matrix) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.val[lo:hi]
}

// Dense expands the matrix into dense form (for tests and small problems).
func (m *Matrix) Dense() *mat.Mat {
	d := mat.New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		cols, vals := m.Row(i)
		row := d.Row(i)
		for k, c := range cols {
			row[c] += vals[k]
		}
	}
	return d
}

// MulVec computes dst ← H·x (dst has length Rows).
func (m *Matrix) MulVec(dst, x []float64) {
	if len(dst) != m.rows || len(x) != m.cols {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := 0; i < m.rows; i++ {
		cols, vals := m.Row(i)
		s := 0.0
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		dst[i] = s
	}
}

// MulVecT computes dst ← Hᵀ·y (dst has length Cols). dst is overwritten.
func (m *Matrix) MulVecT(dst, y []float64) {
	if len(dst) != m.cols || len(y) != m.rows {
		panic("sparse: MulVecT dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		cols, vals := m.Row(i)
		yi := y[i]
		for k, c := range cols {
			dst[c] += vals[k] * yi
		}
	}
}

// DenseMulT computes dst ← C·Hᵀ where C is dense n×n (more generally r×n)
// and H is this m×n sparse matrix; dst must be r×m. This is the first
// "d-s" product of the update procedure. Work is proportional to r·nnz.
func (m *Matrix) DenseMulT(dst, c *mat.Mat) {
	m.denseMulTRange(dst, c, 0, c.Rows)
}

// DenseMulTPar is DenseMulT with the rows of C partitioned across the team.
func (m *Matrix) DenseMulTPar(t *par.Team, dst, c *mat.Mat) {
	t.For(c.Rows, func(lo, hi int) { m.denseMulTRange(dst, c, lo, hi) })
}

func (m *Matrix) denseMulTRange(dst, c *mat.Mat, r0, r1 int) {
	if dst.Rows != c.Rows || dst.Cols != m.rows || c.Cols != m.cols {
		panic("sparse: DenseMulT dimension mismatch")
	}
	for i := r0; i < r1; i++ {
		ci := c.Row(i)
		di := dst.Row(i)
		for j := 0; j < m.rows; j++ {
			cols, vals := m.Row(j)
			s := 0.0
			for k, cc := range cols {
				s += vals[k] * ci[cc]
			}
			di[j] = s
		}
	}
}

// DenseMulTSym computes dst ← C·Hᵀ for a *symmetric* square matrix C,
// reading only the lower triangle of C: entry C[i][k] with k > i is taken
// from C[k][i] instead. The upper triangle of C may hold garbage, which is
// what lets the covariance hot path maintain (or trust) only one triangle.
// Flop count is identical to DenseMulT; only the access pattern differs.
func (m *Matrix) DenseMulTSym(dst, c *mat.Mat) {
	m.denseMulTSymRange(dst, c, 0, c.Rows)
}

// DenseMulTSymPar is DenseMulTSym with the rows of C partitioned across the
// team.
func (m *Matrix) DenseMulTSymPar(t *par.Team, dst, c *mat.Mat) {
	t.For(c.Rows, func(lo, hi int) { m.denseMulTSymRange(dst, c, lo, hi) })
}

func (m *Matrix) denseMulTSymRange(dst, c *mat.Mat, r0, r1 int) {
	if c.Rows != c.Cols {
		panic("sparse: DenseMulTSym on non-square matrix")
	}
	if dst.Rows != c.Rows || dst.Cols != m.rows || c.Cols != m.cols {
		panic("sparse: DenseMulTSym dimension mismatch")
	}
	for i := r0; i < r1; i++ {
		ci := c.Row(i)
		di := dst.Row(i)
		for j := 0; j < m.rows; j++ {
			cols, vals := m.Row(j)
			s := 0.0
			for k, cc := range cols {
				if cc <= i {
					s += vals[k] * ci[cc]
				} else {
					s += vals[k] * c.Data[cc*c.Stride+i]
				}
			}
			di[j] = s
		}
	}
}

// MulDense computes dst ← H·A where A is dense n×p; dst must be m×p. This is
// the second "d-s" product (forming H·(C·Hᵀ)). Work is proportional to
// nnz·p.
func (m *Matrix) MulDense(dst, a *mat.Mat) {
	m.mulDenseRange(dst, a, 0, m.rows)
}

// MulDensePar is MulDense with the sparse rows partitioned across the team.
func (m *Matrix) MulDensePar(t *par.Team, dst, a *mat.Mat) {
	t.For(m.rows, func(lo, hi int) { m.mulDenseRange(dst, a, lo, hi) })
}

func (m *Matrix) mulDenseRange(dst, a *mat.Mat, r0, r1 int) {
	if dst.Rows != m.rows || dst.Cols != a.Cols || a.Rows != m.cols {
		panic("sparse: MulDense dimension mismatch")
	}
	for i := r0; i < r1; i++ {
		di := dst.Row(i)
		for j := range di {
			di[j] = 0
		}
		cols, vals := m.Row(i)
		for k, c := range cols {
			mat.Axpy(vals[k], a.Row(c), di)
		}
	}
}
