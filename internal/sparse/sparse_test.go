package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"phmse/internal/mat"
	"phmse/internal/par"
)

// randSparse builds a random m×n sparse matrix with up to k non-zeros per
// row at distinct columns.
func randSparse(rng *rand.Rand, m, n, k int) *Matrix {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		nnz := 1 + rng.Intn(k)
		if nnz > n {
			nnz = n
		}
		perm := rng.Perm(n)[:nnz]
		vals := make([]float64, nnz)
		for j := range vals {
			vals[j] = rng.NormFloat64()
		}
		b.AddRow(perm, vals)
	}
	return b.Build()
}

func randDense(rng *rand.Rand, r, c int) *mat.Mat {
	m := mat.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddRow([]int{0, 3}, []float64{1, 2})
	b.AddRow(nil, nil)
	b.AddRow([]int{2}, []float64{5})
	m := b.Build()
	if m.Rows() != 3 || m.Cols() != 4 || m.NNZ() != 3 {
		t.Fatalf("shape %d×%d nnz %d", m.Rows(), m.Cols(), m.NNZ())
	}
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[1] != 3 || vals[1] != 2 {
		t.Fatalf("row 0: %v %v", cols, vals)
	}
	cols, _ = m.Row(1)
	if len(cols) != 0 {
		t.Fatal("row 1 not empty")
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(2)
	b.AddRow([]int{0}, []float64{1})
	b.Reset()
	b.AddRow([]int{1}, []float64{2})
	m := b.Build()
	if m.Rows() != 1 || m.NNZ() != 1 {
		t.Fatalf("after reset: rows %d nnz %d", m.Rows(), m.NNZ())
	}
}

func TestBuilderColumnRangePanics(t *testing.T) {
	b := NewBuilder(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range column did not panic")
		}
	}()
	b.AddRow([]int{2}, []float64{1})
}

func TestDense(t *testing.T) {
	b := NewBuilder(3)
	b.AddRow([]int{1}, []float64{4})
	b.AddRow([]int{0, 2}, []float64{1, 2})
	d := b.Build().Dense()
	want := mat.FromRows([][]float64{{0, 4, 0}, {1, 0, 2}})
	if !d.Equal(want, 0) {
		t.Fatalf("Dense = %v", d)
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := randSparse(rng, 7, 11, 4)
	x := make([]float64, 11)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, 7)
	h.MulVec(got, x)
	want := make([]float64, 7)
	mat.MulVec(want, h.Dense(), x)
	mat.SubVec(want, want, got)
	if mat.Norm2(want) > 1e-12 {
		t.Fatal("MulVec mismatch")
	}
}

func TestMulVecTAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := randSparse(rng, 7, 11, 4)
	y := make([]float64, 7)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	got := make([]float64, 11)
	h.MulVecT(got, y)
	want := make([]float64, 11)
	mat.MulVec(want, h.Dense().T(), y)
	mat.SubVec(want, want, got)
	if mat.Norm2(want) > 1e-12 {
		t.Fatal("MulVecT mismatch")
	}
}

// Property: C·Hᵀ computed sparsely matches the dense computation.
func TestDenseMulTProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(10), 1+rng.Intn(15)
		h := randSparse(rng, m, n, 5)
		c := randDense(rng, n, n)
		got := mat.New(n, m)
		h.DenseMulT(got, c)
		want := mat.New(n, m)
		mat.Mul(want, c, h.Dense().T())
		return got.Equal(want, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: H·A computed sparsely matches the dense computation.
func TestMulDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, p := 1+rng.Intn(10), 1+rng.Intn(15), 1+rng.Intn(8)
		h := randSparse(rng, m, n, 5)
		a := randDense(rng, n, p)
		got := mat.New(m, p)
		h.MulDense(got, a)
		want := mat.New(m, p)
		mat.Mul(want, h.Dense(), a)
		return got.Equal(want, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: parallel d-s products agree with the serial ones for any team.
func TestParallelMatchesSerialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(12), 1+rng.Intn(20)
		p := 1 + rng.Intn(6)
		team := par.NewTeam(p)
		h := randSparse(rng, m, n, 6)
		c := randDense(rng, n, n)

		serialCT := mat.New(n, m)
		h.DenseMulT(serialCT, c)
		parCT := mat.New(n, m)
		h.DenseMulTPar(team, parCT, c)
		if !serialCT.Equal(parCT, 1e-13) {
			return false
		}

		serialS := mat.New(m, m)
		h.MulDense(serialS, serialCT)
		parS := mat.New(m, m)
		h.MulDensePar(team, parS, parCT)
		return serialS.Equal(parS, 1e-13)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateColumnsAccumulateInDense(t *testing.T) {
	// Dense() accumulates duplicates; products treat them additively too.
	b := NewBuilder(2)
	b.AddRow([]int{0, 0}, []float64{1, 2})
	m := b.Build()
	if m.Dense().At(0, 0) != 3 {
		t.Fatal("duplicate columns not accumulated")
	}
	x := []float64{10, 0}
	y := make([]float64, 1)
	m.MulVec(y, x)
	if y[0] != 30 {
		t.Fatalf("MulVec with duplicates = %g", y[0])
	}
}

func BenchmarkDenseMulT(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	h := randSparse(rng, 16, 600, 6)
	c := randDense(rng, 600, 600)
	dst := mat.New(600, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.DenseMulT(dst, c)
	}
}

// TestDenseMulTSymMatchesDense builds a symmetric C, poisons its strict
// upper triangle with NaN, and checks the symmetric product path never
// reads it and reproduces the full-read product bitwise.
func TestDenseMulTSymMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(80)
		m := 1 + rng.Intn(24)
		h := randSparse(rng, m, n, 1+rng.Intn(6))
		c := randDense(rng, n, n)
		mat.MirrorLower(c) // exactly symmetric
		want := mat.New(n, m)
		h.DenseMulT(want, c)

		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				c.Set(i, j, math.NaN())
			}
		}
		got := mat.New(n, m)
		h.DenseMulTSym(got, c)
		team := par.NewTeam(1 + trial%4)
		gotPar := mat.New(n, m)
		h.DenseMulTSymPar(team, gotPar, c)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				if math.IsNaN(got.At(i, j)) || math.IsNaN(gotPar.At(i, j)) {
					t.Fatal("symmetric path read the poisoned upper triangle")
				}
				if got.At(i, j) != want.At(i, j) || gotPar.At(i, j) != want.At(i, j) {
					t.Fatalf("n=%d m=%d: (%d,%d) sym %g want %g", n, m, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}
