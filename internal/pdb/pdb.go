// Package pdb writes solved structures in Protein Data Bank format — the
// lingua franca downstream molecular tooling expects — and reads a minimal
// subset back. The B-factor column carries the per-atom positional σ (Å),
// the natural PDB home for the estimator's uncertainty output.
package pdb

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"phmse/internal/geom"
	"phmse/internal/molecule"
)

// Write emits one MODEL of ATOM records (pseudo-atoms are written as
// calcium-like single-letter carbons for viewer compatibility). bfactor may
// be nil; positions must match atoms.
func Write(w io.Writer, name string, atoms []molecule.Atom, pos []geom.Vec3, bfactor []float64) error {
	if len(atoms) != len(pos) {
		return fmt.Errorf("pdb: %d atoms but %d positions", len(atoms), len(pos))
	}
	if bfactor != nil && len(bfactor) != len(atoms) {
		return fmt.Errorf("pdb: %d atoms but %d b-factors", len(atoms), len(bfactor))
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "HEADER    MOLECULAR STRUCTURE ESTIMATE          %s\n", strings.ToUpper(clip(name, 30)))
	fmt.Fprintf(bw, "REMARK   3 B-FACTOR COLUMN CARRIES POSITIONAL SIGMA (ANGSTROM)\n")
	for i, a := range atoms {
		b := 0.0
		if bfactor != nil {
			b = bfactor[i]
		}
		atomName := clip(strings.ToUpper(nonEmpty(a.Name, "C")), 4)
		resSeq := a.Residue%10000 + 1
		if resSeq <= 0 {
			resSeq += 10000
		}
		// Fixed-column PDB ATOM record.
		fmt.Fprintf(bw, "ATOM  %5d %-4s %-3s A%4d    %8.3f%8.3f%8.3f%6.2f%6.2f           C\n",
			(i+1)%100000, atomName, "UNK", resSeq,
			pos[i][0], pos[i][1], pos[i][2], 1.0, b)
	}
	fmt.Fprintln(bw, "END")
	return bw.Flush()
}

// Read parses ATOM/HETATM records, returning atom names and coordinates.
// Columns follow the fixed PDB layout; short or malformed lines error.
func Read(r io.Reader) (names []string, pos []geom.Vec3, err error) {
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if !strings.HasPrefix(line, "ATOM") && !strings.HasPrefix(line, "HETATM") {
			continue
		}
		if len(line) < 54 {
			return nil, nil, fmt.Errorf("pdb: line %d too short", lineNo)
		}
		x, err1 := parseCoord(line[30:38])
		y, err2 := parseCoord(line[38:46])
		z, err3 := parseCoord(line[46:54])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, nil, fmt.Errorf("pdb: line %d: bad coordinates", lineNo)
		}
		names = append(names, strings.TrimSpace(line[12:16]))
		pos = append(pos, geom.Vec3{x, y, z})
	}
	return names, pos, sc.Err()
}

func parseCoord(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

func nonEmpty(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
