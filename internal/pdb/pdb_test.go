package pdb

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"phmse/internal/geom"
	"phmse/internal/molecule"
)

func TestWriteReadRoundTrip(t *testing.T) {
	atoms := []molecule.Atom{
		{Name: "B0", Residue: 0},
		{Name: "S1", Residue: 1},
		{Name: "", Residue: 2},
	}
	pos := []geom.Vec3{{1.25, -2.5, 3.125}, {10, 20, 30}, {-4.5, 0, 7.875}}
	sigma := []float64{0.5, 1.25, 2}
	var buf bytes.Buffer
	if err := Write(&buf, "test", atoms, pos, sigma); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "HEADER") || !strings.Contains(out, "END") {
		t.Fatal("missing header/footer")
	}
	names, got, err := Read(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d atoms", len(got))
	}
	for i := range pos {
		if got[i].Sub(pos[i]).Norm() > 2e-3 {
			t.Fatalf("atom %d: %v vs %v", i, got[i], pos[i])
		}
	}
	if names[0] != "B0" || names[2] != "C" {
		t.Fatalf("names = %v", names)
	}
}

func TestWriteBFactors(t *testing.T) {
	atoms := []molecule.Atom{{Name: "X", Residue: 0}}
	pos := []geom.Vec3{{0, 0, 0}}
	var buf bytes.Buffer
	if err := Write(&buf, "b", atoms, pos, []float64{3.25}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), " 3.25") {
		t.Fatalf("b-factor missing:\n%s", buf.String())
	}
}

func TestWriteLengthMismatch(t *testing.T) {
	atoms := []molecule.Atom{{Name: "X"}}
	if err := Write(&bytes.Buffer{}, "x", atoms, nil, nil); err == nil {
		t.Fatal("no error for position mismatch")
	}
	if err := Write(&bytes.Buffer{}, "x", atoms, []geom.Vec3{{0, 0, 0}}, []float64{1, 2}); err == nil {
		t.Fatal("no error for b-factor mismatch")
	}
}

func TestWriteNegativeResidue(t *testing.T) {
	// Protein pseudo-atoms carry negative residues; the writer must still
	// emit a positive residue sequence number.
	atoms := []molecule.Atom{{Name: "S2", Residue: -3}}
	var buf bytes.Buffer
	if err := Write(&buf, "p", atoms, []geom.Vec3{{1, 2, 3}}, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "A  -") {
		t.Fatal("negative residue sequence leaked")
	}
}

func TestReadSkipsNonAtomLines(t *testing.T) {
	in := "HEADER    X\nREMARK 1\nATOM      1 C    UNK A   1       1.000   2.000   3.000  1.00  0.00           C\nTER\nEND\n"
	names, pos, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || math.Abs(pos[0][2]-3) > 1e-9 {
		t.Fatalf("parsed %v %v", names, pos)
	}
}

func TestReadRejectsShortAtomLine(t *testing.T) {
	if _, _, err := Read(strings.NewReader("ATOM  1 C\n")); err == nil {
		t.Fatal("short line accepted")
	}
}

func TestReadRejectsBadCoordinates(t *testing.T) {
	in := "ATOM      1 C    UNK A   1       x.xxx   2.000   3.000  1.00  0.00           C\n"
	if _, _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("bad coordinates accepted")
	}
}
