package phmse_test

import (
	"math"
	"strings"
	"testing"

	"phmse"
)

// The public-API walkthrough from the package documentation.
func TestQuickstartFlow(t *testing.T) {
	p := phmse.WithAnchors(phmse.Helix(1), 4, 0.05)
	est, err := phmse.NewEstimator(p, phmse.Config{Mode: phmse.Hierarchical, Procs: 2, MaxCycles: 80, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := est.Solve(phmse.Perturbed(p, 0.4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Fatalf("not converged: %+v", sol)
	}
	if rmsd := phmse.RMSD(sol.Positions, p.TruePositions()); rmsd > 0.3 {
		t.Fatalf("RMSD %g", rmsd)
	}
	if len(sol.Variances) != len(p.Atoms) {
		t.Fatal("variances length")
	}
}

func TestCustomProblemViaPublicTypes(t *testing.T) {
	p := &phmse.Problem{Name: "square"}
	pts := []phmse.Vec3{{0, 0, 0}, {4, 0, 0}, {4, 4, 0}, {0, 4, 0}}
	for _, pt := range pts {
		p.Atoms = append(p.Atoms, phmse.Atom{Pos: pt})
	}
	diag := math.Sqrt(32)
	p.Constraints = []phmse.Constraint{
		phmse.Position{I: 0, Target: pts[0], Sigma: 0.01},
		phmse.Position{I: 1, Target: pts[1], Sigma: 0.01},
		phmse.Distance{I: 1, J: 2, Target: 4, Sigma: 0.05},
		phmse.Distance{I: 2, J: 3, Target: 4, Sigma: 0.05},
		phmse.Distance{I: 3, J: 0, Target: 4, Sigma: 0.05},
		phmse.Distance{I: 0, J: 2, Target: diag, Sigma: 0.05},
		phmse.Distance{I: 1, J: 3, Target: diag, Sigma: 0.05},
	}
	est, err := phmse.NewEstimator(p, phmse.Config{Mode: phmse.Flat, MaxCycles: 150, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := est.Solve(phmse.Perturbed(p, 0.5, 9))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Residual > 1 {
		t.Fatalf("residual %g", sol.Residual)
	}
}

func TestSimulatePublicAPI(t *testing.T) {
	p := phmse.Helix(4)
	est, err := phmse.NewEstimator(p, phmse.Config{Mode: phmse.Hierarchical})
	if err != nil {
		t.Fatal(err)
	}
	dash := phmse.DASH()
	serial := phmse.Simulate(est, dash, 1)
	eight := phmse.Simulate(est, dash, 8)
	if eight.Wall >= serial.Wall {
		t.Fatal("no virtual speedup")
	}
	if s := serial.Wall / eight.Wall; s < 4 || s > 8 {
		t.Fatalf("NP=8 speedup %g", s)
	}
	flat := phmse.SimulateFlat(p, dash, 1, 16)
	if flat.Wall <= serial.Wall {
		t.Fatal("flat organization should be slower than hierarchical")
	}
}

func TestSimulateRequiresHierarchy(t *testing.T) {
	p := phmse.Helix(1)
	est, err := phmse.NewEstimator(p, phmse.Config{Mode: phmse.Flat})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for flat Simulate")
		}
	}()
	phmse.Simulate(est, phmse.DASH(), 2)
}

func TestDecompositionHelpers(t *testing.T) {
	p := phmse.Helix(1)
	g := phmse.GraphPartition(len(p.Atoms), p.Constraints, 10)
	if len(g.Atoms()) != len(p.Atoms) {
		t.Fatal("GraphPartition lost atoms")
	}
	r := phmse.RecursiveBisection(16, 4)
	if len(r.Leaves()) != 4 {
		t.Fatal("RecursiveBisection leaves")
	}
}

func TestWorkModelPublicAPI(t *testing.T) {
	cells := phmse.MeasureTable2([]int{16, 43}, []int{4, 16}, 0.25)
	if len(cells) != 4 {
		t.Fatal("cells")
	}
	// Fitting needs ≥5 rows; synthesize a few extra batch dims.
	cells = append(cells, phmse.MeasureTable2([]int{86}, []int{4, 16, 32}, 0.25)...)
	model, err := phmse.FitEquation1(cells, 4)
	if err != nil {
		t.Fatal(err)
	}
	if model.PerScalar(300, 16) <= 0 {
		t.Fatal("model not positive")
	}
}

func TestConformSearchPublicAPI(t *testing.T) {
	p := phmse.Helix(1)
	init := phmse.ConformSearch(len(p.Atoms), p.Constraints, 3)
	if len(init) != len(p.Atoms) {
		t.Fatal("length")
	}
}

func TestRibo30SPublicAPI(t *testing.T) {
	r := phmse.Ribo30SWith(phmse.Ribo30SConfig{Helices: 3, Coils: 3, Proteins: 2, Seed: 5})
	est, err := phmse.NewEstimator(r, phmse.Config{Mode: phmse.Hierarchical, MaxCycles: 30, Tol: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := est.Solve(phmse.Perturbed(r, 1.0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestBaselinesPublicAPI(t *testing.T) {
	p := phmse.WithAnchors(phmse.Helix(1), 3, 0.05)
	truth := p.TruePositions()

	dg, err := phmse.DistanceGeometry(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dg) != len(p.Atoms) {
		t.Fatal("DG length")
	}
	r, err := phmse.SuperposedRMSD(dg, truth)
	if err != nil {
		t.Fatal(err)
	}
	if r > 15 {
		t.Fatalf("DG embedding unreasonably bad: %g", r)
	}

	pos := phmse.Perturbed(p, 0.4, 6)
	before := phmse.ConstraintEnergy(p, pos)
	res := phmse.EnergyMinimize(p, pos, 300)
	if res.Energy >= before {
		t.Fatalf("energy minimization did not improve: %g → %g", before, res.Energy)
	}
}

func TestWritePDBPublicAPI(t *testing.T) {
	p := phmse.WithAnchors(phmse.Helix(1), 3, 0.05)
	est, err := phmse.NewEstimator(p, phmse.Config{MaxCycles: 3})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := est.Solve(p.TruePositions())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := phmse.WritePDB(&buf, p, sol); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ATOM") || strings.Count(out, "\n") < len(p.Atoms) {
		t.Fatal("PDB output malformed")
	}
}

func TestGroupBottomUpPublicAPI(t *testing.T) {
	p := phmse.Helix(2)
	leaves := p.Tree.Leaves()
	tree := phmse.GroupBottomUp(leaves, p.Constraints)
	if len(tree.Atoms()) != len(p.Atoms) {
		t.Fatal("bottom-up grouping lost atoms")
	}
	q := &phmse.Problem{Name: "bu", Atoms: p.Atoms, Constraints: p.Constraints, Tree: tree}
	if _, err := phmse.NewEstimator(q, phmse.Config{Mode: phmse.Hierarchical}); err != nil {
		t.Fatal(err)
	}
}

func TestExclusionsPublicAPI(t *testing.T) {
	p := phmse.Helix(1)
	aug := phmse.WithExclusions(p, 2.0, 0.5, 25)
	if len(aug.Constraints) <= len(p.Constraints) {
		t.Fatal("no exclusions added")
	}
	pos := []phmse.Vec3{{0, 0, 0}, {0.1, 0, 0}}
	if phmse.Clashes(pos, 1.0) != 1 {
		t.Fatal("Clashes")
	}
}

func TestSimulateDynamicPublicAPI(t *testing.T) {
	p := phmse.Helix(8)
	est, err := phmse.NewEstimator(p, phmse.Config{Mode: phmse.Hierarchical})
	if err != nil {
		t.Fatal(err)
	}
	dash := phmse.DASH()
	static6 := phmse.Simulate(est, dash, 6)
	dyn6 := phmse.SimulateDynamic(est, dash, 6)
	if dyn6.Wall >= static6.Wall {
		t.Fatalf("dynamic %g not below static %g at NP=6", dyn6.Wall, static6.Wall)
	}
}
