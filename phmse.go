// Package phmse is a Go implementation of parallel hierarchical molecular
// structure estimation (Chen, Singh, Altman — Supercomputing '96): a
// probabilistic method that integrates many uncertain measurements
// (distances, angles, torsions, absolute positions, one-sided bounds) into
// an estimate of a molecule's 3-D structure together with a covariance
// measure of its uncertainty.
//
// The package exposes the full system: problem generators (RNA helices, a
// synthetic 30S ribosome, α-helix-bundle proteins), the iterated
// Kalman-style estimator in flat and hierarchical organizations,
// goroutine-parallel execution with the paper's static
// processor-assignment heuristic, automatic structure decomposition, the
// work-estimation regression, calibrated virtual-time models of the
// paper's two evaluation machines (Stanford DASH and SGI Challenge) for
// reproducing its performance tables, the related-work baselines (distance
// geometry, energy minimization), and covariance diagnostics (uncertainty
// ellipsoids, per-type residuals).
//
// Quick start:
//
//	p := phmse.WithAnchors(phmse.Helix(4), 4, 0.05)
//	est, err := phmse.NewEstimator(p, phmse.Config{Mode: phmse.Hierarchical, Procs: 4})
//	if err != nil { ... }
//	sol, err := est.Solve(phmse.Perturbed(p, 0.5, 1))
//	fmt.Println(sol.Converged, sol.Residual)
package phmse

import (
	"io"
	"math"

	"phmse/internal/analysis"
	"phmse/internal/conform"
	"phmse/internal/constraint"
	"phmse/internal/core"
	"phmse/internal/distgeom"
	"phmse/internal/encode"
	"phmse/internal/energymin"
	"phmse/internal/filter"
	"phmse/internal/geom"
	"phmse/internal/hier"
	"phmse/internal/machine"
	"phmse/internal/molecule"
	"phmse/internal/pdb"
	"phmse/internal/superpose"
	"phmse/internal/trace"
	"phmse/internal/vm"
	"phmse/internal/workest"
)

// Geometry.
type (
	// Vec3 is a point or direction in 3-space.
	Vec3 = geom.Vec3
)

// Problem modeling.
type (
	// Problem is a structure-estimation problem instance: atoms with
	// reference positions, a constraint set, and a hierarchical grouping.
	Problem = molecule.Problem
	// Atom is one (pseudo-)atom of a problem.
	Atom = molecule.Atom
	// Group is a node of a molecule's hierarchical grouping.
	Group = molecule.Group
	// Ribo30SConfig sizes the synthetic ribosome generator.
	Ribo30SConfig = molecule.Ribo30SConfig
)

// Measurement models.
type (
	// Constraint is a (possibly vector-valued) observation of a structure.
	Constraint = constraint.Constraint
	// Distance is an observed interatomic distance.
	Distance = constraint.Distance
	// Angle is an observed bond angle.
	Angle = constraint.Angle
	// Torsion is an observed dihedral angle.
	Torsion = constraint.Torsion
	// Position anchors an atom to an externally known location.
	Position = constraint.Position
	// DistanceBound is a one-sided (non-Gaussian) distance constraint.
	DistanceBound = constraint.DistanceBound
)

// Estimation.
type (
	// Estimator solves a problem; construct with NewEstimator.
	Estimator = core.Estimator
	// Config configures an Estimator.
	Config = core.Config
	// Solution is a solved structure estimate with per-atom uncertainty.
	Solution = core.Solution
	// Mode selects the flat or hierarchical organization.
	Mode = core.Mode
	// Collector accumulates per-operation-class timing.
	Collector = trace.Collector
	// OpTimes is a per-operation-class time breakdown.
	OpTimes = trace.Times
)

// Organization modes.
const (
	// Flat treats the molecule as one long vector of atoms.
	Flat = core.Flat
	// Hierarchical recursively decomposes the molecule.
	Hierarchical = core.Hierarchical
)

// Performance modeling (the paper's evaluation machines).
type (
	// Machine is a calibrated 1996 shared-memory multiprocessor model.
	Machine = machine.Machine
	// SimResult is a virtual-time run result.
	SimResult = vm.Result
	// WorkModel is a fitted Equation 1 work-estimation model.
	WorkModel = workest.Model
	// Ellipsoid is one atom's positional uncertainty (principal axes with
	// standard deviations), from Solution.Ellipsoid.
	Ellipsoid = analysis.Ellipsoid
	// TypeResidual summarizes how well one class of observations is
	// satisfied, from ResidualsByType.
	TypeResidual = analysis.TypeResidual
	// Table2Cell is one measurement of the Table 2 experiment.
	Table2Cell = workest.Measurement
)

// NewEstimator builds an estimator for the problem.
func NewEstimator(p *Problem, cfg Config) (*Estimator, error) { return core.New(p, cfg) }

// Helix generates an RNA double helix of the given number of base pairs
// with the paper's five constraint categories and Figure 2 decomposition.
func Helix(basePairs int) *Problem { return molecule.Helix(basePairs) }

// Ribo30S generates the synthetic 30S ribosomal subunit problem.
func Ribo30S(seed int64) *Problem { return molecule.Ribo30S(seed) }

// Ribo30SWith generates a synthetic ribosome with explicit sizing.
func Ribo30SWith(cfg Ribo30SConfig) *Problem { return molecule.Ribo30SWith(cfg) }

// Protein generates a synthetic α-helix-bundle protein whose constraint
// set mixes distances, bond angles, backbone torsions, hydrogen bonds and
// tertiary contacts, with the residue/secondary/tertiary hierarchy the
// paper's introduction describes.
func Protein(nResidues int, seed int64) *Problem { return molecule.Protein(nResidues, seed) }

// ProteinConfig sizes the synthetic protein generator.
type ProteinConfig = molecule.ProteinConfig

// ProteinWith generates a synthetic protein with explicit sizing.
func ProteinWith(cfg ProteinConfig) *Problem { return molecule.ProteinWith(cfg) }

// WithAnchors returns a copy of the problem with its first k atoms anchored
// at their reference positions, removing rigid-motion gauge freedom.
func WithAnchors(p *Problem, k int, sigma float64) *Problem {
	return molecule.WithAnchors(p, k, sigma)
}

// Perturbed returns the problem's reference positions displaced by Gaussian
// noise, as a distorted starting estimate.
func Perturbed(p *Problem, sigma float64, seed int64) []Vec3 {
	return molecule.Perturbed(p, sigma, seed)
}

// RMSD returns the root-mean-square deviation between two conformations.
func RMSD(a, b []Vec3) float64 { return molecule.RMSD(a, b) }

// TopologyHash returns a content hash of the problem's topology — atom
// count, constraint graph (types and atom indices, not measurement
// values), and hierarchical grouping. Problems with equal hashes share
// decomposition and scheduling products; the phmsed daemon keys its plan
// cache on it.
func TopologyHash(p *Problem) string { return encode.TopologyHash(p) }

// ConformSearch runs the low-resolution discrete conformational space
// search to produce an initial structure estimate.
func ConformSearch(nAtoms int, cons []Constraint, seed int64) []Vec3 {
	return conform.Search(nAtoms, cons, conform.Options{Seed: seed})
}

// GraphPartition derives a hierarchical grouping of a flat problem by
// recursive constraint-graph bipartition (§5's automatic decomposition).
func GraphPartition(nAtoms int, cons []Constraint, leafSize int) *Group {
	return hier.GraphPartition(nAtoms, cons, leafSize)
}

// RecursiveBisection derives a hierarchical grouping by blind halving of
// the atom index range (the paper's baseline decomposition).
func RecursiveBisection(nAtoms, leafSize int) *Group {
	return hier.RecursiveBisection(nAtoms, leafSize)
}

// DASH returns the calibrated Stanford DASH machine model (32 processors).
func DASH() *Machine { return machine.DASH() }

// Challenge returns the calibrated SGI Challenge model (16 processors).
func Challenge() *Machine { return machine.Challenge() }

// Simulate runs one virtual-time cycle of the estimator's parallel
// hierarchical schedule on the machine model with the given processor
// count, reproducing the paper's Tables 3–6 methodology. The estimator must
// be hierarchical.
func Simulate(e *Estimator, m *Machine, procs int) SimResult {
	root := e.Root()
	if root == nil {
		panic("phmse: Simulate requires a hierarchical estimator")
	}
	plan := replan(e, procs)
	return vm.Run(root, m, procs, plan)
}

// SimulateDynamic runs one virtual-time cycle under the §5 dynamic
// processor re-grouping extension (greedy load balancing across sibling
// subtrees instead of the static bipartition).
func SimulateDynamic(e *Estimator, m *Machine, procs int) SimResult {
	root := e.Root()
	if root == nil {
		panic("phmse: SimulateDynamic requires a hierarchical estimator")
	}
	return vm.RunDynamic(root, m, procs)
}

// SimulateFlat runs one virtual-time cycle of the flat organization.
func SimulateFlat(p *Problem, m *Machine, procs, batch int) SimResult {
	if batch <= 0 {
		batch = filter.DefaultBatchSize
	}
	shapes := vm.FlatShapes(p.ScalarDim(), batch, 6)
	return vm.RunFlat(3*len(p.Atoms), shapes, m, procs)
}

// MeasureTable2 runs the paper's Table 2 experiment with real kernels.
func MeasureTable2(nodeSizes, batchDims []int, scale float64) []Table2Cell {
	return workest.MeasureTable2(nodeSizes, batchDims, scale)
}

// FitEquation1 performs the paper's constrained regression on Table 2
// measurements, excluding batch dimensions below minBatch.
func FitEquation1(cells []Table2Cell, minBatch int) (WorkModel, error) {
	return workest.Fit(cells, minBatch)
}

// replan recomputes the static processor assignment for a processor count
// different from the estimator's configuration.
func replan(e *Estimator, procs int) *hier.ExecPlan {
	if procs <= 1 {
		return nil
	}
	return core.Replan(e, procs)
}

// --- Baseline methods (§6 related work) and structural utilities ---

// EnergyResult reports the outcome of an energy minimization.
type EnergyResult = energymin.Result

// DistanceGeometry runs the Crippen–Havel baseline: bound smoothing, trial
// distances, and metric-matrix embedding. It returns candidate coordinates
// with no uncertainty measure.
func DistanceGeometry(p *Problem, seed int64) ([]Vec3, error) {
	return distgeom.Embed(len(p.Atoms), p.Constraints, distgeom.Options{Seed: seed})
}

// EnergyMinimize runs the penalty-function minimization baseline on pos in
// place and reports the outcome.
func EnergyMinimize(p *Problem, pos []Vec3, maxIters int) EnergyResult {
	return energymin.Minimize(pos, p.Constraints, energymin.Options{MaxIters: maxIters})
}

// ConstraintEnergy returns the weighted squared constraint violation of a
// conformation — the objective shared by the baseline methods.
func ConstraintEnergy(p *Problem, pos []Vec3) float64 {
	return energymin.Energy(pos, p.Constraints)
}

// SuperposedRMSD returns the RMSD between two conformations after optimal
// rigid-body superposition (Horn's method), removing the gauge freedom
// distance data cannot determine.
func SuperposedRMSD(moving, fixed []Vec3) (float64, error) {
	return superpose.RMSD(moving, fixed)
}

// WritePDB writes a solved structure in PDB format with per-atom positional
// σ in the B-factor column.
func WritePDB(w io.Writer, p *Problem, sol *Solution) error {
	sigma := make([]float64, len(sol.Variances))
	for i, v := range sol.Variances {
		sigma[i] = math.Sqrt(v)
	}
	return pdb.Write(w, p.Name, p.Atoms, sol.Positions, sigma)
}

// GroupBottomUp builds a hierarchy from user-specified leaf groups by
// greedy affinity merging (§5's bottom-up alternative).
func GroupBottomUp(leaves []*Group, cons []Constraint) *Group {
	return hier.GroupLeaves(leaves, cons)
}

// WithExclusions augments a problem with van der Waals lower-bound
// constraints (non-Gaussian, one-sided) on every stride-th unobserved pair.
func WithExclusions(p *Problem, minDist, sigma float64, stride int) *Problem {
	return molecule.WithExclusions(p, minDist, sigma, stride)
}

// Clashes counts atom pairs closer than minDist in a conformation.
func Clashes(pos []Vec3, minDist float64) int {
	return molecule.Clashes(pos, minDist)
}

// ResidualsByType evaluates the problem's constraints at a conformation and
// groups the weighted residuals by constraint type — the first diagnostic
// to read when a solve stalls.
func ResidualsByType(p *Problem, pos []Vec3) map[string]TypeResidual {
	return analysis.ResidualByType(pos, p.Constraints)
}

// FormatResiduals renders a per-type residual table, largest RMS first.
func FormatResiduals(byType map[string]TypeResidual) string {
	return analysis.FormatResiduals(byType)
}
