package phmse_test

import (
	"fmt"

	"phmse"
)

// Estimate a small helix and report convergence.
func Example() {
	problem := phmse.WithAnchors(phmse.Helix(1), 4, 0.05)
	est, err := phmse.NewEstimator(problem, phmse.Config{Mode: phmse.Hierarchical, Tol: 1e-4})
	if err != nil {
		panic(err)
	}
	sol, err := est.Solve(phmse.Perturbed(problem, 0.3, 1))
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", sol.Converged)
	fmt.Println("atoms estimated:", len(sol.Positions))
	// Output:
	// converged: true
	// atoms estimated: 43
}

// Build a problem from scratch with the public constraint types.
func ExampleNewEstimator() {
	p := &phmse.Problem{Name: "triangle"}
	for _, pt := range []phmse.Vec3{{0, 0, 0}, {3, 0, 0}, {0, 4, 0}} {
		p.Atoms = append(p.Atoms, phmse.Atom{Pos: pt})
	}
	p.Constraints = []phmse.Constraint{
		phmse.Position{I: 0, Target: phmse.Vec3{0, 0, 0}, Sigma: 0.01},
		phmse.Distance{I: 0, J: 1, Target: 3, Sigma: 0.02},
		phmse.Distance{I: 0, J: 2, Target: 4, Sigma: 0.02},
		phmse.Distance{I: 1, J: 2, Target: 5, Sigma: 0.02},
	}
	est, err := phmse.NewEstimator(p, phmse.Config{Mode: phmse.Flat, Tol: 1e-5, MaxCycles: 200})
	if err != nil {
		panic(err)
	}
	sol, err := est.Solve(phmse.Perturbed(p, 0.2, 4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("residual below 0.1: %v\n", sol.Residual < 0.1)
	// Output:
	// residual below 0.1: true
}

// Model the paper's processor sweep on the DASH machine.
func ExampleSimulate() {
	est, err := phmse.NewEstimator(phmse.Helix(8), phmse.Config{Mode: phmse.Hierarchical})
	if err != nil {
		panic(err)
	}
	dash := phmse.DASH()
	one := phmse.Simulate(est, dash, 1)
	eight := phmse.Simulate(est, dash, 8)
	fmt.Printf("speedup at 8 processors is between 6 and 8: %v\n",
		one.Wall/eight.Wall > 6 && one.Wall/eight.Wall < 8)
	// Output:
	// speedup at 8 processors is between 6 and 8: true
}

// Derive a hierarchy automatically from the constraint graph.
func ExampleGraphPartition() {
	p := phmse.Helix(1)
	tree := phmse.GraphPartition(len(p.Atoms), p.Constraints, 12)
	fmt.Println("atoms covered:", len(tree.Atoms()) == len(p.Atoms))
	fmt.Println("is a bisection:", len(tree.Children) == 2)
	// Output:
	// atoms covered: true
	// is a bisection: true
}
